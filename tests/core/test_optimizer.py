"""Tests for the policy optimizer (§4.2)."""

import pytest

from repro.core.optimizer import PolicyOptimizer, _power_of_two_grid
from repro.core.policy import Policy
from repro.utils.errors import InfeasiblePolicyError
from repro.workloads import mtbench


@pytest.fixture
def optimizer(mixtral, t4_node, mtbench_workload):
    return PolicyOptimizer(
        model=mixtral, hardware=t4_node, workload=mtbench_workload, padded=True
    )


def test_power_of_two_grid_includes_bounds():
    assert _power_of_two_grid(1, 10) == [1, 2, 4, 8, 10]
    assert _power_of_two_grid(3, 3) == [3]
    assert _power_of_two_grid(5, 4) == []


def test_search_returns_feasible_policy(optimizer):
    result = optimizer.search()
    assert optimizer.memory_model.is_feasible(result.policy)
    assert result.throughput > 0
    assert result.feasible_candidates > 0
    assert result.candidates_evaluated >= result.feasible_candidates


def test_paper_main_setting_selects_cpu_attention_gpu_ffn(optimizer):
    """§4.2: 'For our major setting, we always get A_g = 0 and F_g = 1'."""
    policy = optimizer.search().policy
    assert not policy.attention_on_gpu
    assert policy.ffn_on_gpu


def test_selected_policy_beats_naive_policies(optimizer):
    best = optimizer.search()
    naive_small = optimizer.evaluate(
        Policy(batch_size=32, micro_batch_size=32, weights_gpu_ratio=0.0)
    )
    assert best.throughput > naive_small.throughput


def test_best_of_explicit_candidates(optimizer):
    candidates = [
        Policy(batch_size=64, micro_batch_size=32),
        Policy(batch_size=512, micro_batch_size=64),
    ]
    result = optimizer.best_of(candidates)
    assert result.policy in candidates
    assert result.policy.batch_size == 512


def test_best_of_all_infeasible_raises(optimizer):
    with pytest.raises(InfeasiblePolicyError):
        optimizer.best_of([Policy(batch_size=9000, micro_batch_size=64, weights_gpu_ratio=1.0)])


def test_attention_restriction_is_respected(mixtral, t4_node, mtbench_workload):
    gpu_only = PolicyOptimizer(
        model=mixtral, hardware=t4_node, workload=mtbench_workload,
        padded=True, allow_cpu_attention=False,
    )
    assert gpu_only.search().policy.attention_on_gpu
    cpu_only = PolicyOptimizer(
        model=mixtral, hardware=t4_node, workload=mtbench_workload,
        padded=True, allow_gpu_attention=False,
    )
    assert not cpu_only.search().policy.attention_on_gpu


def test_disallowing_both_attention_placements_raises(mixtral, t4_node, mtbench_workload):
    with pytest.raises(InfeasiblePolicyError):
        PolicyOptimizer(
            model=mixtral, hardware=t4_node, workload=mtbench_workload,
            allow_cpu_attention=False, allow_gpu_attention=False,
        )


def test_max_batch_size_cap_is_respected(mixtral, t4_node, mtbench_workload):
    capped = PolicyOptimizer(
        model=mixtral, hardware=t4_node, workload=mtbench_workload,
        padded=True, max_batch_size=128,
    )
    assert capped.search().policy.batch_size <= 128


def test_micro_batch_cap_is_respected(mixtral, t4_node, mtbench_workload):
    capped = PolicyOptimizer(
        model=mixtral, hardware=t4_node, workload=mtbench_workload,
        padded=True, max_micro_batch_size=16,
    )
    assert capped.search().policy.micro_batch_size <= 16


def test_more_cpu_memory_never_hurts(mixtral, t4_node):
    """Fig. 1: throughput is non-decreasing in CPU memory."""
    workload = mtbench(generation_len=64)
    small = PolicyOptimizer(
        model=mixtral, hardware=t4_node.with_cpu_memory(120e9),
        workload=workload, padded=True,
    ).search()
    large = PolicyOptimizer(
        model=mixtral, hardware=t4_node.with_cpu_memory(320e9),
        workload=workload, padded=True,
    ).search()
    assert large.throughput >= small.throughput * 0.999
    assert large.policy.batch_size >= small.policy.batch_size


def test_unconstrained_gpu_keeps_weights_resident(mixtral, mtbench_workload):
    """With 2x A100-80G the whole model fits; the optimizer should not stream."""
    from repro.experiments.hardware_sweep import base_a100_hardware

    optimizer = PolicyOptimizer(
        model=mixtral, hardware=base_a100_hardware(), workload=mtbench_workload,
    )
    policy = optimizer.search().policy
    assert policy.weights_gpu_ratio > 0.9
