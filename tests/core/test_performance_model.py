"""Tests for the HRM-based performance model (Eqs. 12-14)."""

import pytest

from repro.core.performance_model import EfficiencyModel, LatencyBreakdown, PerformanceModel
from repro.core.policy import Policy
from repro.utils.errors import ConfigurationError, InfeasiblePolicyError


@pytest.fixture
def model(mixtral, t4_node, mtbench_workload):
    return PerformanceModel(
        model=mixtral, hardware=t4_node, workload=mtbench_workload, padded=True
    )


@pytest.fixture
def policy():
    return Policy(
        batch_size=512, micro_batch_size=64, attention_on_gpu=False,
        ffn_on_gpu=True, weights_gpu_ratio=0.05,
    )


def test_efficiency_model_rejects_out_of_range():
    with pytest.raises(ConfigurationError):
        EfficiencyModel(gpu_compute=0.0)
    with pytest.raises(ConfigurationError):
        EfficiencyModel(interconnect=1.2)


def test_derated_rates_below_peaks(model, t4_node):
    assert model.gpu_flops < t4_node.gpu_flops
    assert model.cpu_bandwidth < t4_node.cpu_bandwidth
    assert model.interconnect_bandwidth < t4_node.cpu_gpu_bandwidth


def test_breakdown_t_layer_is_max_of_terms(model, policy):
    breakdown = model.layer_decode_breakdown(policy, context_len=500)
    assert breakdown.t_layer == pytest.approx(
        max(breakdown.comm_htod, breakdown.comm_dtoh, breakdown.t_cpu, breakdown.t_gpu)
    )
    assert breakdown.bottleneck in ("htod", "dtoh", "cpu", "gpu")


def test_weight_streaming_dominates_htod_on_t4(model, policy):
    """On S1 the streamed expert weights dwarf the per-step hidden traffic."""
    breakdown = model.layer_decode_breakdown(policy, context_len=500)
    components = breakdown.components
    assert components["htod_weight_bytes"] > 10 * components["htod_hidden_bytes"]
    assert breakdown.bottleneck == "htod"


def test_cpu_attention_time_grows_with_context(model, policy):
    short = model.layer_decode_breakdown(policy, context_len=128)
    long = model.layer_decode_breakdown(policy, context_len=2048)
    assert long.t_cpu > 4 * short.t_cpu


def test_gpu_attention_policy_moves_kv_traffic_to_htod(model):
    gpu_policy = Policy(
        batch_size=512, micro_batch_size=64, attention_on_gpu=True,
        ffn_on_gpu=True, weights_gpu_ratio=0.05, kv_cache_gpu_ratio=0.0,
    )
    breakdown = model.layer_decode_breakdown(gpu_policy, context_len=500)
    assert breakdown.components["htod_kv_bytes"] > 0
    assert breakdown.t_cpu == 0.0


def test_resident_weights_reduce_htod_time(model, policy):
    resident = policy.with_weights_gpu_ratio(0.5)
    base = model.layer_decode_breakdown(policy, context_len=500)
    improved = model.layer_decode_breakdown(resident, context_len=500)
    assert improved.comm_htod < base.comm_htod


def test_larger_batch_increases_step_latency_but_improves_throughput(model, policy):
    small = model.estimate(policy.with_batch_size(128))
    large = model.estimate(policy.with_batch_size(1024))
    assert large.decode_time > small.decode_time
    assert large.throughput > small.throughput


def test_decode_time_scales_with_generation_length(mixtral, t4_node, mtbench_workload, policy):
    short = PerformanceModel(
        model=mixtral, hardware=t4_node,
        workload=mtbench_workload.with_generation_len(32), padded=True,
    ).decode_time(policy)
    long = PerformanceModel(
        model=mixtral, hardware=t4_node,
        workload=mtbench_workload.with_generation_len(128), padded=True,
    ).decode_time(policy)
    assert 3.0 < long / short < 5.0


def test_prefill_time_positive_and_smaller_than_decode(model, policy):
    prefill = model.prefill_time(policy)
    decode = model.decode_time(policy)
    assert prefill > 0
    assert decode > prefill


def test_estimate_throughput_consistency(model, policy):
    estimate = model.estimate(policy)
    assert estimate.tokens_generated == policy.batch_size * model.workload.generation_len
    assert estimate.throughput == pytest.approx(
        estimate.tokens_generated / (estimate.prefill_time + estimate.decode_time)
    )
    assert estimate.decode_throughput > estimate.throughput


def test_estimate_feasible_rejects_oversized_policy(model):
    huge = Policy(batch_size=8000, micro_batch_size=64)
    with pytest.raises(InfeasiblePolicyError):
        model.estimate_feasible(huge)


def test_overlap_speedup_at_least_one():
    breakdown = LatencyBreakdown(comm_htod=1.0, comm_dtoh=0.1, t_cpu=0.5, t_gpu=0.9)
    assert breakdown.overlap_speedup >= 1.0
    assert breakdown.t_layer == 1.0


def test_padding_increases_estimated_cost(mixtral, t4_node, mtbench_workload, policy):
    padded = PerformanceModel(mixtral, t4_node, mtbench_workload, padded=True)
    unpadded = PerformanceModel(mixtral, t4_node, mtbench_workload, padded=False)
    assert padded.prefill_time(policy) > unpadded.prefill_time(policy)
    assert padded.decode_time(policy) >= unpadded.decode_time(policy)
