"""Tests for the Policy dataclass."""

import pytest

from repro.core.policy import Placement, Policy
from repro.utils.errors import ConfigurationError


def test_policy_tuple_matches_paper_order():
    policy = Policy(
        batch_size=504,
        micro_batch_size=36,
        attention_on_gpu=False,
        ffn_on_gpu=True,
        weights_gpu_ratio=0.1,
        kv_cache_gpu_ratio=0.0,
    )
    assert policy.as_tuple() == (504, 36, 0, 1, 0.1, 0.0)


def test_num_micro_batches_rounds_up():
    assert Policy(batch_size=100, micro_batch_size=32).num_micro_batches == 4
    assert Policy(batch_size=96, micro_batch_size=32).num_micro_batches == 3


def test_placements():
    policy = Policy(batch_size=8, micro_batch_size=8, attention_on_gpu=False, ffn_on_gpu=True)
    assert policy.attention_placement is Placement.CPU
    assert policy.ffn_placement is Placement.GPU


def test_ratios_complement():
    policy = Policy(
        batch_size=8, micro_batch_size=8, attention_on_gpu=True,
        weights_gpu_ratio=0.3, kv_cache_gpu_ratio=0.25,
    )
    assert policy.weights_cpu_ratio == pytest.approx(0.7)
    assert policy.kv_cache_cpu_ratio == pytest.approx(0.75)
    assert policy.streams_weights


def test_fully_resident_weights_do_not_stream():
    policy = Policy(batch_size=8, micro_batch_size=8, weights_gpu_ratio=1.0)
    assert not policy.streams_weights


def test_micro_batch_cannot_exceed_batch():
    with pytest.raises(ConfigurationError):
        Policy(batch_size=8, micro_batch_size=16)


def test_cpu_attention_requires_cpu_kv_cache():
    with pytest.raises(ConfigurationError):
        Policy(batch_size=8, micro_batch_size=8, attention_on_gpu=False, kv_cache_gpu_ratio=0.5)


def test_with_batch_size_clamps_micro_batch():
    policy = Policy(batch_size=64, micro_batch_size=32)
    smaller = policy.with_batch_size(16)
    assert smaller.batch_size == 16
    assert smaller.micro_batch_size == 16


def test_with_ratio_modifiers():
    policy = Policy(batch_size=8, micro_batch_size=4, attention_on_gpu=True)
    assert policy.with_weights_gpu_ratio(0.5).weights_gpu_ratio == 0.5
    assert policy.with_kv_cache_gpu_ratio(0.5).kv_cache_gpu_ratio == 0.5
    with pytest.raises(ConfigurationError):
        policy.with_weights_gpu_ratio(1.5)


def test_describe_contains_key_fields():
    text = Policy(batch_size=504, micro_batch_size=36).describe()
    assert "N=504" in text and "mu=36" in text and "CPU" in text
