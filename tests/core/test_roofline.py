"""Tests for the classical Roofline Model."""

import pytest

from repro.core.roofline import RooflineModel
from repro.utils.errors import ConfigurationError


@pytest.fixture
def roofline():
    return RooflineModel(peak_flops=100e12, peak_bandwidth=1e12)


def test_critical_intensity(roofline):
    assert roofline.critical_intensity == pytest.approx(100.0)


def test_memory_bound_region(roofline):
    point = roofline.classify(10.0)
    assert point.is_memory_bound
    assert point.performance == pytest.approx(10e12)


def test_compute_bound_region(roofline):
    point = roofline.classify(1000.0)
    assert point.is_compute_bound
    assert point.performance == pytest.approx(100e12)


def test_attainable_never_exceeds_either_roof(roofline):
    for intensity in (0.1, 1, 10, 100, 1000, 1e6):
        attainable = roofline.attainable(intensity)
        assert attainable <= roofline.compute_roof() + 1e-6
        assert attainable <= roofline.memory_roof(intensity) + 1e-6


def test_attainable_at_critical_intensity_equals_peak(roofline):
    assert roofline.attainable(roofline.critical_intensity) == pytest.approx(100e12)


def test_time_for_is_max_of_compute_and_memory(roofline):
    # 1e12 FLOPs at 100 TFLOPs/s = 10 ms; 1e11 bytes at 1 TB/s = 100 ms.
    assert roofline.time_for(1e12, 1e11) == pytest.approx(0.1)
    assert roofline.time_for(1e13, 1e9) == pytest.approx(0.1)


def test_time_for_rejects_negative_inputs(roofline):
    with pytest.raises(ValueError):
        roofline.time_for(-1, 0)


def test_sweep_returns_point_per_intensity(roofline):
    points = roofline.sweep([1.0, 10.0, 1000.0])
    assert len(points) == 3
    assert points[0].is_memory_bound and points[-1].is_compute_bound


def test_invalid_hardware_rejected():
    with pytest.raises(ConfigurationError):
        RooflineModel(peak_flops=0, peak_bandwidth=1)
