"""Tests for the functional MoE transformer and its executors."""

import numpy as np
import pytest

from repro.core.policy import Policy
from repro.engine import (
    KVCacheState,
    MoETransformer,
    MoEWeights,
    PipelinedExecutor,
    ReferenceExecutor,
    ToyTokenizer,
    greedy_sample,
    max_logit_difference,
    outputs_equivalent,
    sample_top_k,
)
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def weights(tiny_model):
    return MoEWeights.initialize(tiny_model, seed=3)


@pytest.fixture(scope="module")
def model(weights):
    return MoETransformer(weights)


@pytest.fixture(scope="module")
def prompts(tiny_model):
    rng = np.random.default_rng(11)
    return rng.integers(0, tiny_model.vocab_size, size=(6, 8))


def test_weight_count_matches_analytic_param_count(weights, tiny_model):
    assert weights.num_parameters() == tiny_model.total_params()


def test_weight_initialisation_is_deterministic(tiny_model):
    a = MoEWeights.initialize(tiny_model, seed=5)
    b = MoEWeights.initialize(tiny_model, seed=5)
    assert np.array_equal(a.layers[0].wq, b.layers[0].wq)
    c = MoEWeights.initialize(tiny_model, seed=6)
    assert not np.array_equal(a.layers[0].wq, c.layers[0].wq)


def test_embed_rejects_out_of_vocab(model):
    with pytest.raises(ConfigurationError):
        model.embed(np.array([model.config.vocab_size + 1]))


def test_router_distribution_sums_to_one(model, rng):
    hidden = rng.normal(size=(5, model.config.hidden_size))
    probs = model.router_distribution(0, hidden)
    assert np.allclose(probs.sum(axis=-1), 1.0)


def test_moe_ffn_uses_multiple_experts(model, rng):
    """With random routing, a reasonably large token batch touches >1 expert."""
    hidden = rng.normal(size=(64, model.config.hidden_size))
    layer = model.weights.layers[0]
    logits = hidden @ layer.router
    from repro.engine.numerics import top_k_routing

    indices, _ = top_k_routing(logits, model.config.top_k)
    assert len(np.unique(indices)) > 1


def test_reference_generation_shapes(model, prompts):
    result = ReferenceExecutor(model).generate(prompts, generation_len=5)
    assert len(result.logits_per_step) == 5
    assert result.generated_tokens.shape == (5, prompts.shape[0])
    assert result.kv_state.lengths.tolist() == [prompts.shape[1] + 4] * prompts.shape[0]


def test_pipelined_matches_reference_exactly(model, prompts):
    """CGOPipe ordering is a pure reordering: identical logits and tokens."""
    reference = ReferenceExecutor(model).generate(prompts, generation_len=6)
    policy = Policy(
        batch_size=prompts.shape[0], micro_batch_size=2,
        attention_on_gpu=False, ffn_on_gpu=True, weights_gpu_ratio=0.5,
    )
    pipelined = PipelinedExecutor(model, policy).generate(prompts, generation_len=6)
    assert max_logit_difference(reference, pipelined) < 1e-9
    assert outputs_equivalent(reference, pipelined)


def test_pipelined_equivalence_across_micro_batch_sizes(model, prompts):
    reference = ReferenceExecutor(model).generate(prompts, generation_len=4)
    for micro_batch in (1, 3, 6):
        policy = Policy(
            batch_size=prompts.shape[0], micro_batch_size=micro_batch,
            attention_on_gpu=False, ffn_on_gpu=True,
        )
        pipelined = PipelinedExecutor(model, policy).generate(prompts, generation_len=4)
        assert outputs_equivalent(reference, pipelined)


def test_pipelined_executor_rejects_gpu_attention(model):
    with pytest.raises(ConfigurationError):
        PipelinedExecutor(
            model,
            Policy(batch_size=4, micro_batch_size=2, attention_on_gpu=True),
        )


def test_outputs_equivalent_detects_differences(model, prompts):
    a = ReferenceExecutor(model).generate(prompts, generation_len=3)
    b = ReferenceExecutor(model).generate(prompts, generation_len=3)
    b.logits_per_step[1] = b.logits_per_step[1] + 1.0
    assert not outputs_equivalent(a, b)


def test_max_logit_difference_rejects_length_mismatch(model, prompts):
    a = ReferenceExecutor(model).generate(prompts, generation_len=2)
    b = ReferenceExecutor(model).generate(prompts, generation_len=3)
    with pytest.raises(ValueError):
        max_logit_difference(a, b)


def test_kv_cache_state_copy_and_equality(tiny_model):
    state = KVCacheState(tiny_model, batch_size=2, max_len=16)
    state.lengths[:] = 4
    clone = state.copy()
    assert state.equal_to(clone)
    clone.keys[0, 0, 0, 0, 0] += 1.0
    assert not state.equal_to(clone)


def test_kv_cache_overflow_detected(tiny_model, model, prompts):
    executor = ReferenceExecutor(model)
    from repro.utils.errors import SimulationError

    with pytest.raises(SimulationError):
        executor.generate(prompts, generation_len=20, max_len=prompts.shape[1] + 2)


def test_greedy_sampling_picks_argmax(rng):
    logits = rng.normal(size=(4, 32))
    assert np.array_equal(greedy_sample(logits), logits.argmax(axis=-1))


def test_top_k_sampling_stays_within_top_k(rng):
    logits = rng.normal(size=(8, 32))
    tokens = sample_top_k(logits, k=3, rng=np.random.default_rng(0))
    top3 = np.argsort(-logits, axis=-1)[:, :3]
    assert all(token in row for token, row in zip(tokens, top3))


def test_top_k_sampling_zero_temperature_is_greedy(rng):
    logits = rng.normal(size=(4, 16))
    assert np.array_equal(sample_top_k(logits, k=5, temperature=0.0), greedy_sample(logits))


def test_toy_tokenizer_round_trip():
    tokenizer = ToyTokenizer(vocab_size=512)
    ids = tokenizer.encode("reproduce the paper results")
    assert all(0 <= token < 512 for token in ids)
    assert tokenizer.encode("reproduce the paper results") == ids
    assert len(tokenizer.decode(ids).split()) == len(ids)


def test_toy_tokenizer_batch_padding():
    tokenizer = ToyTokenizer()
    batch = tokenizer.encode_batch(["a b c", "a"], pad_to=4)
    assert all(len(ids) == 4 for ids in batch)
    assert tokenizer.encode("x") != [0] or True  # encoding is deterministic hash
