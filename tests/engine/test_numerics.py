"""Tests for the numerical building blocks."""

import numpy as np
import pytest

from repro.engine.numerics import (
    gqa_attention_decode,
    gqa_attention_prefill,
    rms_norm,
    rotary_embedding,
    silu,
    softmax,
    top_k_routing,
)
from repro.utils.errors import ConfigurationError


def test_softmax_rows_sum_to_one(rng):
    logits = rng.normal(size=(5, 17))
    probs = softmax(logits)
    assert np.allclose(probs.sum(axis=-1), 1.0)
    assert np.all(probs >= 0)


def test_softmax_is_shift_invariant(rng):
    logits = rng.normal(size=(3, 9))
    assert np.allclose(softmax(logits), softmax(logits + 1000.0))


def test_rms_norm_unit_scale(rng):
    x = rng.normal(size=(4, 16))
    weight = np.ones(16)
    normed = rms_norm(x, weight)
    rms = np.sqrt(np.mean(np.square(normed), axis=-1))
    assert np.allclose(rms, 1.0, atol=1e-3)


def test_silu_known_values():
    assert silu(np.array([0.0]))[0] == pytest.approx(0.0)
    assert silu(np.array([100.0]))[0] == pytest.approx(100.0, rel=1e-6)
    assert silu(np.array([-100.0]))[0] == pytest.approx(0.0, abs=1e-6)


def test_rotary_embedding_preserves_norm(rng):
    x = rng.normal(size=(2, 5, 4, 8))
    positions = np.broadcast_to(np.arange(5), (2, 5))
    rotated = rotary_embedding(x, positions)
    assert np.allclose(
        np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1)
    )


def test_rotary_embedding_position_zero_is_identity(rng):
    x = rng.normal(size=(1, 1, 2, 8))
    positions = np.zeros((1, 1))
    assert np.allclose(rotary_embedding(x, positions), x)


def test_rotary_embedding_rejects_odd_head_dim(rng):
    with pytest.raises(ConfigurationError):
        rotary_embedding(rng.normal(size=(1, 1, 2, 7)), np.zeros((1, 1)))


def test_prefill_attention_is_causal(rng):
    """Changing a future token must not affect earlier positions' outputs."""
    batch, seq, n_q, n_kv, dim = 1, 6, 4, 2, 8
    q = rng.normal(size=(batch, seq, n_q, dim))
    k = rng.normal(size=(batch, seq, n_kv, dim))
    v = rng.normal(size=(batch, seq, n_kv, dim))
    base = gqa_attention_prefill(q, k, v)
    k2, v2 = k.copy(), v.copy()
    k2[:, -1], v2[:, -1] = rng.normal(size=(n_kv, dim)), rng.normal(size=(n_kv, dim))
    changed = gqa_attention_prefill(q, k2, v2)
    assert np.allclose(base[:, :-1], changed[:, :-1])
    assert not np.allclose(base[:, -1], changed[:, -1])


def test_decode_attention_matches_prefill_last_position(rng):
    """Decoding the last token over the cache equals the prefill output there."""
    batch, seq, n_q, n_kv, dim = 2, 5, 4, 2, 8
    q = rng.normal(size=(batch, seq, n_q, dim))
    k = rng.normal(size=(batch, seq, n_kv, dim))
    v = rng.normal(size=(batch, seq, n_kv, dim))
    prefill = gqa_attention_prefill(q, k, v)
    decode = gqa_attention_decode(
        q[:, -1], k, v, context_lens=np.full(batch, seq)
    )
    assert np.allclose(decode, prefill[:, -1], atol=1e-10)


def test_decode_attention_masks_unused_slots(rng):
    batch, ctx, n_q, n_kv, dim = 1, 8, 4, 2, 8
    q = rng.normal(size=(batch, n_q, dim))
    k = rng.normal(size=(batch, ctx, n_kv, dim))
    v = rng.normal(size=(batch, ctx, n_kv, dim))
    short = gqa_attention_decode(q, k, v, context_lens=np.array([4]))
    k2, v2 = k.copy(), v.copy()
    k2[:, 5:], v2[:, 5:] = 99.0, 99.0  # garbage beyond the context length
    short_again = gqa_attention_decode(q, k2, v2, context_lens=np.array([4]))
    assert np.allclose(short, short_again)


def test_attention_rejects_bad_head_grouping(rng):
    q = rng.normal(size=(1, 3, 8))
    k = rng.normal(size=(1, 4, 2, 8))
    with pytest.raises(ConfigurationError):
        gqa_attention_decode(rng.normal(size=(1, 3, 8)), k, k)


def test_top_k_routing_selects_largest_logits():
    logits = np.array([[0.1, 5.0, -1.0, 3.0]])
    indices, weights = top_k_routing(logits, top_k=2)
    assert set(indices[0]) == {1, 3}
    assert weights[0].sum() == pytest.approx(1.0)
    assert weights[0][list(indices[0]).index(1)] > weights[0][list(indices[0]).index(3)]


def test_top_k_routing_rejects_bad_k():
    with pytest.raises(ConfigurationError):
        top_k_routing(np.zeros((1, 4)), top_k=0)
    with pytest.raises(ConfigurationError):
        top_k_routing(np.zeros((1, 4)), top_k=5)
