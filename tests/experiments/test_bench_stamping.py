"""BENCH artifact provenance stamps and tail-latency summary coverage."""

import json

import pytest

from repro.experiments.bench_output import (
    BENCH_SCHEMA_VERSION,
    SUMMARY_METRICS,
    serving_summary,
    write_bench_serving_json,
)

ROWS = [
    {
        "system": "moe-lightning",
        "load_factor": 1.0,
        "token_throughput": 10.0,
        "ttft_p50": 1.0,
        "ttft_p95": 2.0,
        "ttft_p99": 3.0,
        "tpot_p50": 0.1,
        "tpot_p95": 0.2,
        "tpot_p99": 0.3,
        "e2e_p50": 5.0,
        "e2e_p95": 8.0,
        "e2e_p99": 9.0,
        "goodput": 1.0,
        "goodput_fraction": 0.9,
        "not_jsonable": object(),
    }
]


class TestStamping:
    def test_artifact_carries_provenance(self, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        document = write_bench_serving_json(path, ROWS, meta={"seed": 0})
        assert document["schema_version"] == BENCH_SCHEMA_VERSION
        assert BENCH_SCHEMA_VERSION >= 2
        assert isinstance(document["git_sha"], str) and document["git_sha"]
        # ISO-8601 UTC timestamp, parseable back.
        from datetime import datetime

        stamp = datetime.fromisoformat(document["created_at"])
        assert stamp.tzinfo is not None

        reloaded = json.loads(path.read_text())
        assert reloaded["schema_version"] == document["schema_version"]
        assert reloaded["git_sha"] == document["git_sha"]
        assert reloaded["created_at"] == document["created_at"]

    def test_non_jsonable_row_values_dropped(self, tmp_path):
        document = write_bench_serving_json(tmp_path / "b.json", ROWS)
        assert "not_jsonable" not in document["rows"][0]


class TestTailSummaries:
    def test_summary_metrics_cover_p99_tails(self):
        # The regression this satellite guards: every latency family
        # reports p50 *and* p99 in the BENCH summary, not just p95.
        for family in ("ttft", "tpot", "e2e"):
            for quantile in ("p50", "p95", "p99"):
                assert f"{family}_{quantile}" in SUMMARY_METRICS

    def test_summary_carries_e2e_tails(self):
        summary = serving_summary(ROWS)
        entry = summary["moe-lightning"]
        assert entry["e2e_p50"] == 5.0
        assert entry["e2e_p99"] == 9.0
        assert entry["ttft_p99"] == 3.0


class TestServingRowsCarryP99:
    def test_serving_report_as_row_has_p99(self, mixtral, t4_node):
        from repro.experiments.serving_sweep import run_serving_sweep

        rows = run_serving_sweep(
            load_factors=(1.0,),
            system_names=("moe-lightning",),
            num_requests=8,
            generation_len=4,
        )
        row = rows[0]
        for key in ("ttft_p99", "tpot_p99", "e2e_p99"):
            assert key in row
            assert row[key] >= 0.0
        assert row["e2e_p99"] >= row["e2e_p50"]
        assert serving_summary(rows)["moe-lightning"]["e2e_p99"] == pytest.approx(
            row["e2e_p99"]
        )
