"""Cache-sweep harness, its CLI wiring and the BENCH_serving.json fields."""

import json

import pytest

from repro.experiments.cache_sweep import CACHE_SWEEP_COLUMNS, main, run_cache_sweep
from repro.experiments.bench_output import serving_summary, write_bench_serving_json
from repro.experiments.serving_sweep import main as serve_main
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def rows():
    return run_cache_sweep(
        load_factors=(2.0,),
        num_requests=16,
        generation_len=8,
        turns_per_session=4,
        seed=0,
    )


def test_rows_pair_cache_off_and_on(rows):
    assert [row["prefix_cache"] for row in rows] == ["off", "on"]
    for row in rows:
        for column in CACHE_SWEEP_COLUMNS:
            assert column in row


def test_cache_on_dominates_in_the_sweep(rows):
    off, on = rows
    assert on["hit_rate"] > 0.0 and off["hit_rate"] == 0.0
    assert on["token_throughput"] > off["token_throughput"]
    assert on["mean_ttft"] < off["mean_ttft"]


def test_unknown_system_rejected():
    with pytest.raises(ConfigurationError):
        run_cache_sweep(system_name="unknown")
    with pytest.raises(ConfigurationError):
        run_cache_sweep(arrival="weibull")
    with pytest.raises(ConfigurationError):
        run_cache_sweep(load_factors=())


def test_summary_splits_cache_settings_and_carries_hit_rate(rows):
    summary = serving_summary(rows)
    assert set(summary) == {
        "moe-lightning (cache off)",
        "moe-lightning (cache on)",
    }
    on = summary["moe-lightning (cache on)"]
    assert on["hit_rate"] > 0.0
    assert "cached_token_fraction" in on


def test_bench_json_records_cache_and_shard_fields(rows, tmp_path):
    path = tmp_path / "BENCH_serving.json"
    write_bench_serving_json(path, rows, meta={"shards": 1, "prefix_cache": "on"})
    document = json.loads(path.read_text())
    assert document["meta"]["shards"] == 1
    assert document["meta"]["prefix_cache"] == "on"
    for row in document["rows"]:
        assert "hit_rate" in row
        assert "cached_token_fraction" in row


def test_cache_sweep_cli_writes_json(tmp_path, capsys):
    path = tmp_path / "bench.json"
    code = main(
        [
            "--num-requests", "8",
            "--generation-len", "4",
            "--load-factors", "2.0",
            "--json", str(path),
        ]
    )
    assert code == 0
    document = json.loads(path.read_text())
    assert document["meta"]["workload"] == "chat"
    assert capsys.readouterr().out.count("Prefix-cache sweep") == 1


def test_cache_sweep_cli_invalid_config_exits_2(capsys):
    assert main(["--system", "nope"]) == 2
    assert "error" in capsys.readouterr().err


def test_repro_serve_accepts_prefix_cache_flag(capsys):
    code = serve_main(
        [
            "--workload", "chat",
            "--prefix-cache", "on",
            "--systems", "moe-lightning",
            "--num-requests", "8",
            "--generation-len", "4",
            "--load-factors", "1.0",
            "--chunk-prefill", "96",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hit_rate" in out
