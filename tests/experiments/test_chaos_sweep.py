"""The chaos sweep experiment: shape, gates, CLI and artifact plumbing."""

import json

import pytest

from repro.experiments.chaos_sweep import (
    CHAOS_SWEEP_COLUMNS,
    gates_pass,
    main,
    run_chaos_sweep,
)
from repro.utils.errors import ConfigurationError

SWEEP_KWARGS = dict(num_requests=48, seed=0)

SCENARIOS = (
    "fault-free",
    "empty-schedule",
    "transient-crash",
    "transient-crash+retry",
    "correlated+retry",
    "rolling-restart+retry",
)


@pytest.fixture(scope="module")
def sweep():
    return run_chaos_sweep(**SWEEP_KWARGS)


def test_one_row_per_scenario(sweep):
    assert [row["scenario"] for row in sweep["rows"]] == list(SCENARIOS)


def test_rows_carry_the_table_columns(sweep):
    for row in sweep["rows"]:
        for column in CHAOS_SWEEP_COLUMNS:
            assert column in row, column


def test_every_scenario_conserves_requests(sweep):
    for row in sweep["rows"]:
        assert row["completed"] + row["rejected"] == row["offered"]
        assert row["offered"] >= SWEEP_KWARGS["num_requests"]


def test_fault_rows_record_faults(sweep):
    by_name = {row["scenario"]: row for row in sweep["rows"]}
    assert by_name["fault-free"]["crashes"] == 0
    assert by_name["empty-schedule"]["crashes"] == 0
    assert by_name["transient-crash"]["crashes"] == 1
    assert by_name["transient-crash"]["recoveries"] == 1
    assert by_name["transient-crash"]["drop_crash"] > 0
    assert by_name["transient-crash"]["retries"] == 0
    assert by_name["transient-crash+retry"]["retries"] > 0
    assert by_name["correlated+retry"]["crashes"] == 2
    assert by_name["rolling-restart+retry"]["crashes"] == 4
    assert by_name["rolling-restart+retry"]["recoveries"] == 4


def test_acceptance_gates_hold(sweep):
    """The PR's three robustness gates, asserted at tier 1."""
    gates = sweep["gates"]
    assert gates["empty_schedule_identical"] is True
    assert gates["retry_goodput"] > gates["no_retry_goodput"]
    assert gates["post_recovery_arrivals"] > 0
    assert gates["post_recovery_goodput_ratio"] >= (
        1.0 - gates["recovery_tolerance"]
    )
    assert gates_pass(gates) is True


def test_gates_pass_requires_every_gate(sweep):
    gates = dict(sweep["gates"])
    assert gates_pass(gates)
    gates["retry_beats_no_retry"] = False
    assert not gates_pass(gates)


def test_single_shard_rejected():
    with pytest.raises(ConfigurationError, match=">= 2 shards"):
        run_chaos_sweep(num_shards=1)


def test_unknown_system_rejected():
    with pytest.raises(ConfigurationError, match="unknown system"):
        run_chaos_sweep(system_name="nope")


def test_cli_writes_gated_artifact(tmp_path, capsys):
    out = tmp_path / "BENCH_chaos.json"
    code = main(
        [
            "--num-requests",
            "48",
            "--gate",
            "--json",
            str(out),
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "Chaos sweep" in captured.out
    assert "gates:" in captured.out
    document = json.loads(out.read_text())
    assert document["benchmark"] == "chaos"
    assert document["gates"]["empty_schedule_identical"] is True
    assert [row["scenario"] for row in document["rows"]] == list(SCENARIOS)
    assert "transient-crash+retry" in document["summary"]


def test_cli_rejects_bad_config(capsys):
    assert main(["--shards", "1"]) == 2
    assert "repro-chaos: error" in capsys.readouterr().err
