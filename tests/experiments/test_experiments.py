"""Tests for the experiment harnesses (scaled-down parameterisations)."""

import pytest

from repro.experiments import (
    render_rows,
    rows_to_markdown,
    run_cpu_memory_sweep,
    run_helm_experiment,
    run_kernel_latency_ablation,
    run_mtbench_experiment,
    run_policy_ablation,
    run_schedule_comparison,
    run_tp_scaling,
)
from repro.experiments.ablation_kernels import crossover_points
from repro.experiments.e2e import speedup_summary
from repro.experiments.pipeline_diagram import comparison_rows
from repro.experiments.throughput_vs_cpumem import cpu_memory_to_match
from repro.experiments.tp_scaling import scaling_factors


@pytest.fixture(scope="module")
def mtbench_rows():
    return run_mtbench_experiment(
        settings=("S1",), generation_lengths=(32, 128), max_sim_layers=2,
        include_unpadded=True,
    )


def test_mtbench_rows_cover_all_systems(mtbench_rows):
    systems = {row["system"] for row in mtbench_rows}
    assert {"flexgen", "flexgen(c)", "deepspeed", "moe-lightning(p)", "moe-lightning"} <= systems
    lengths = {row["generation_len"] for row in mtbench_rows}
    assert lengths == {32, 128}


def test_mtbench_moe_lightning_wins_every_cell(mtbench_rows):
    """Fig. 7: MoE-Lightning(p) outperforms all baselines in every setting."""
    summary = speedup_summary(mtbench_rows)
    assert summary, "expected at least one summarised cell"
    for cell in summary:
        assert cell["padded_speedup"] > 1.0
        assert cell["unpadded_speedup"] > cell["padded_speedup"]


def test_helm_experiment_runs_and_moe_lightning_wins():
    rows = run_helm_experiment(
        settings=("S1",), workloads=("synthetic_reasoning",), max_sim_layers=2
    )
    by_system = {row["system"]: row for row in rows if row["throughput"]}
    assert by_system["moe-lightning(p)"]["throughput"] > by_system["flexgen"]["throughput"]
    assert by_system["moe-lightning(p)"]["throughput"] > by_system["deepspeed"]["throughput"]


def test_policy_ablation_ordering():
    """Table 5: their policy < our policy < our policy + larger N < MoE-Lightning."""
    rows = run_policy_ablation(max_sim_layers=2)
    throughputs = [row["throughput"] for row in rows]
    assert throughputs[1] > throughputs[0]
    assert throughputs[2] >= throughputs[1] * 0.98
    assert throughputs[3] > throughputs[1]
    assert rows[0]["speedup_vs_flexgen"] == pytest.approx(1.0)


def test_kernel_latency_ablation_shapes():
    rows = run_kernel_latency_ablation(
        micro_batch_sizes=(32, 256), context_lengths=(128, 2048)
    )
    assert len(rows) == 4
    for row in rows:
        assert row["kv_transfer_s"] > row["cpu_attention_s"]
    crossings = crossover_points(rows)
    assert any(c["crossover_context_len"] is not None for c in crossings)


def test_schedule_comparison_has_cgopipe_fastest():
    results = run_schedule_comparison(max_sim_layers=3)
    rows = comparison_rows(results)
    cgopipe = next(r for r in rows if r["schedule"] == "cgopipe")
    assert cgopipe["slowdown_vs_cgopipe"] == pytest.approx(1.0)
    for row in rows:
        if row["schedule"] != "cgopipe":
            assert row["slowdown_vs_cgopipe"] > 1.0


def test_cpu_memory_sweep_dominance_and_memory_saving():
    rows = run_cpu_memory_sweep(
        cpu_memory_gb=(128, 160, 192, 256, 320), max_sim_layers=2, simulate=True,
    )
    # Curve dominance at every CPU-memory point (the Fig. 1 ordering).
    by_memory: dict[float, dict[str, float]] = {}
    for row in rows:
        if row["throughput"] is not None:
            by_memory.setdefault(row["cpu_memory_gb"], {})[row["system"]] = row["throughput"]
    for memory_gb, group in by_memory.items():
        if {"moe-lightning", "flexgen w/ their policy"} <= set(group):
            assert group["moe-lightning"] > group["flexgen w/ their policy"]
        if {"moe-lightning", "flexgen w/ our policy"} <= set(group):
            assert group["moe-lightning"] >= group["flexgen w/ our policy"]
    # MoE-Lightning matches FlexGen's best throughput with much less DRAM.
    # Paper headline: the saturated FlexGen throughput is matched by
    # MoE-Lightning with 2-3x less CPU memory.
    saving = cpu_memory_to_match(rows)
    assert saving["cpu_memory_saving"] is not None
    assert saving["cpu_memory_saving"] >= 2.0
    # Throughput is non-decreasing in CPU memory for MoE-Lightning.
    lightning_rows = [
        r for r in rows if r["system"] == "moe-lightning" and r["throughput"]
    ]
    throughputs = [r["throughput"] for r in sorted(lightning_rows, key=lambda r: r["cpu_memory_gb"])]
    assert all(b >= a * 0.99 for a, b in zip(throughputs, throughputs[1:]))


def test_tp_scaling_dbrx_improves_with_more_gpus():
    """Fig. 8: DBRX throughput improves from 2xT4 to 4xT4.

    The paper reports 2.1-2.8x; our PCIe-bound cost model reproduces the
    direction (and the larger resident-weight fraction that drives it) with a
    smaller factor — see EXPERIMENTS.md for the discussion.
    """
    rows = run_tp_scaling(
        settings=("S8", "S9"), generation_lengths=(64,), max_sim_layers=2,
        simulate=False,
    )
    factors = scaling_factors(rows)
    assert factors
    assert all(1.05 < f["scaling_factor"] < 4.5 for f in factors)
    by_setting = {row["setting"]: row for row in rows if row["throughput"]}
    assert (
        by_setting["S9"]["weights_gpu_ratio"] > by_setting["S8"]["weights_gpu_ratio"]
    )


def test_render_rows_and_markdown():
    rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": None}]
    text = render_rows(rows, title="demo")
    assert "demo" in text and "2.50" in text
    markdown = rows_to_markdown(rows)
    assert markdown.startswith("| a | b |")
    assert render_rows([], title="empty") == "empty: (no rows)"
