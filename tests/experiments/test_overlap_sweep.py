"""Overlap-sweep harness, its CLI wiring and the BENCH artifact fields."""

import json

import pytest

from repro.experiments.bench_output import serving_summary, write_bench_serving_json
from repro.experiments.overlap_sweep import (
    OVERLAP_SWEEP_COLUMNS,
    main,
    run_overlap_sweep,
)
from repro.experiments.serving_sweep import main as serve_main
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def rows():
    return run_overlap_sweep(
        load_factors=(4.0,),
        num_requests=16,
        generation_len=16,
        seed=0,
    )


def test_rows_pair_serialized_and_overlapped(rows):
    assert [row["overlap"] for row in rows] == ["off", "on"]
    for row in rows:
        for column in OVERLAP_SWEEP_COLUMNS:
            assert column in row


def test_overlap_on_dominates_in_the_sweep(rows):
    off, on = rows
    assert on["mean_tpot"] < off["mean_tpot"]
    assert on["goodput"] >= off["goodput"]
    assert on["overlap_fraction"] > 0.0
    assert off["overlap_fraction"] == 0.0


def test_invalid_configurations_rejected():
    with pytest.raises(ConfigurationError):
        run_overlap_sweep(system_name="unknown")
    with pytest.raises(ConfigurationError):
        run_overlap_sweep(arrival="weibull")
    with pytest.raises(ConfigurationError):
        run_overlap_sweep(load_factors=())


def test_summary_splits_overlap_settings(rows):
    summary = serving_summary(rows)
    assert set(summary) == {
        "moe-lightning (overlap off)",
        "moe-lightning (overlap on)",
    }
    on = summary["moe-lightning (overlap on)"]
    assert on["overlap_fraction"] > 0.0
    assert "tpot_p95" in on and "mean_tpot" in on


def test_bench_json_records_overlap_fields(rows, tmp_path):
    path = tmp_path / "BENCH_serving_overlap.json"
    write_bench_serving_json(path, rows, meta={"shards": 1, "tpot_factor": 1.2})
    document = json.loads(path.read_text())
    assert document["meta"]["tpot_factor"] == 1.2
    for row in document["rows"]:
        assert row["overlap"] in ("on", "off")
        assert "overlap_fraction" in row
        assert "tpot_p95" in row


def test_overlap_sweep_cli_writes_json(tmp_path, capsys):
    path = tmp_path / "bench.json"
    code = main(
        [
            "--num-requests", "8",
            "--generation-len", "8",
            "--load-factors", "2.0",
            "--json", str(path),
        ]
    )
    assert code == 0
    document = json.loads(path.read_text())
    assert document["meta"]["workload"] == "chat"
    assert capsys.readouterr().out.count("Overlap sweep") == 1


def test_overlap_sweep_cli_invalid_config_exits_2(capsys):
    assert main(["--system", "nope"]) == 2
    assert main(["--shards", "0"]) == 2
    assert "error" in capsys.readouterr().err


def test_repro_serve_accepts_overlap_flag(capsys):
    code = serve_main(
        [
            "--workload", "chat",
            "--overlap", "on",
            "--systems", "moe-lightning",
            "--num-requests", "8",
            "--generation-len", "8",
            "--load-factors", "2.0",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "overlap_fraction" in out


def test_repro_serve_sharded_accepts_overlap_flag(capsys):
    code = serve_main(
        [
            "--shards", "2",
            "--overlap", "on",
            "--systems", "moe-lightning",
            "--num-requests", "8",
            "--generation-len", "8",
        ]
    )
    assert code == 0
    assert "num_shards" in capsys.readouterr().out
