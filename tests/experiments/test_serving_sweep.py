"""The serving load-sweep experiment: shape, metrics, determinism."""

import pytest

from repro.experiments import offline_capacity, run_serving_sweep
from repro.experiments.serving_sweep import SWEEP_COLUMNS
from repro.systems import MoELightningSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import mtbench

SWEEP_KWARGS = dict(
    load_factors=(0.5, 2.0, 8.0),
    system_names=("moe-lightning", "flexgen"),
    num_requests=24,
    generation_len=8,
    seed=0,
)


@pytest.fixture(scope="module")
def rows():
    return run_serving_sweep(**SWEEP_KWARGS)


def test_sweep_covers_rates_by_systems(rows):
    assert len(rows) == 6  # 3 arrival rates x 2 systems
    assert {row["system"] for row in rows} == {"moe-lightning", "flexgen"}
    assert len({row["rate_rps"] for row in rows}) == 3


def test_sweep_reports_required_metrics(rows):
    for row in rows:
        for column in SWEEP_COLUMNS:
            assert column in row
        for metric in ("ttft_p50", "ttft_p99", "tpot_p50", "tpot_p99"):
            assert row[metric] > 0
        assert 0.0 <= row["goodput_fraction"] <= 1.0
        assert row["goodput"] >= 0.0


def test_systems_share_rates_and_slo(rows):
    """Each sweep point measures both systems at identical absolute load."""
    by_factor = {}
    for row in rows:
        by_factor.setdefault(row["load_factor"], []).append(row)
    for points in by_factor.values():
        assert len({row["rate_rps"] for row in points}) == 1
        assert len({row["slo_ttft"] for row in points}) == 1
        assert len({row["slo_tpot"] for row in points}) == 1


def test_sweep_is_deterministic(rows):
    again = run_serving_sweep(**SWEEP_KWARGS)
    assert again == rows


def test_offline_capacity_positive(mixtral, t4_node):
    workload = mtbench(generation_len=8, num_requests=24)
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    assert offline_capacity(backend, workload, policy) > 0


def test_unknown_system_rejected():
    with pytest.raises(ConfigurationError):
        run_serving_sweep(system_names=("vllm",))


def test_unknown_arrival_rejected():
    with pytest.raises(ConfigurationError):
        run_serving_sweep(arrival="weibull")
