"""Tests for the Table 2/3 setting and workload encodings."""

import pytest

from repro.experiments import EVALUATION_SETTINGS, get_setting, list_settings
from repro.utils.errors import ConfigurationError


def test_paper_settings_present():
    assert list_settings() == ["S1", "S2", "S6", "S7", "S8", "S9"]


def test_s1_matches_table_2():
    setting = get_setting("S1")
    assert setting.model_name == "mixtral-8x7b"
    assert setting.hardware_name == "1xT4"
    assert setting.model.num_layers == 32
    assert setting.hardware.tp_size == 1


def test_s7_is_mixtral_8x22b_on_four_t4s():
    setting = get_setting("s7")
    assert setting.model_name == "mixtral-8x22b"
    assert setting.hardware.tp_size == 4
    assert setting.hardware.cpu_memory == pytest.approx(416e9)


def test_s8_s9_are_dbrx():
    assert get_setting("S8").model_name == "dbrx"
    assert get_setting("S9").hardware_name == "4xT4"


def test_setting_workload_helper():
    workload = get_setting("S1").workload("mtbench", generation_len=256)
    assert workload.generation_len == 256


def test_unknown_setting_raises():
    with pytest.raises(ConfigurationError):
        get_setting("S3")


def test_settings_descriptions_non_empty():
    assert all(setting.description for setting in EVALUATION_SETTINGS.values())
