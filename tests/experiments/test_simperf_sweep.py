"""Tests for the simulator raw-speed sweep (``repro-simperf``).

The heavy measurements live in ``benchmarks/test_bench_simperf.py``; these
tests exercise the sweep's plumbing on tiny streams — row shape, work
conservation, the speedup calculations and the CI regression gate — so a
broken harness fails tier-1 in seconds rather than the bench job in
minutes.
"""

import pytest

from repro.experiments.simperf_sweep import (
    PRE_PR_BASELINE,
    REFERENCE_REQUESTS,
    REFERENCE_SHARDS,
    _make_backend,
    cache_aware_ratio,
    check_near_linear_scaling,
    gate_against_baseline,
    measure_cache_ratio,
    measure_reference,
    run_simperf_sweep,
    speedup_vs_pre_pr,
    speedup_vs_reference,
)
from repro.utils.errors import ConfigurationError


def _row(
    mode: str,
    events_per_sec: float,
    num_requests: int = 1000,
    num_shards: int = 4,
    router: str = "cache-aware",
    prefix_cache: bool = True,
    peak_mem_mb: float | None = None,
) -> dict[str, object]:
    return {
        "mode": mode,
        "router": router,
        "num_shards": num_shards,
        "num_requests": num_requests,
        "prefix_cache": prefix_cache,
        "events_per_sec": events_per_sec,
        "peak_mem_mb": peak_mem_mb,
    }


class TestSweep:
    def test_tiny_sweep_rows_conserve_work(self):
        rows = run_simperf_sweep(
            stream_lengths=(100, 200),
            shard_counts=(2,),
            with_reference=False,
            seed=0,
        )
        assert len(rows) == 2
        for row in rows:
            assert row["mode"] == "streaming"
            assert row["completed"] + row["rejected"] == row["num_requests"]
            assert row["num_events"] >= row["num_requests"]
            assert row["events_per_sec"] > 0
            assert row["wall_time_s"] > 0

    def test_reference_pair_shares_the_timeline(self):
        rows = measure_reference(
            _make_backend(), num_requests=200, num_shards=2, repeats=1
        )
        time_sliced, streaming = rows
        assert time_sliced["mode"] == "time-sliced"
        assert streaming["mode"] == "streaming"
        # Identical simulated timelines: the modes may only differ in how
        # fast the wall clock gets through them.
        assert streaming["num_events"] == time_sliced["num_events"]
        assert streaming["completed"] == time_sliced["completed"]
        assert streaming["makespan_s"] == pytest.approx(time_sliced["makespan_s"])

    def test_empty_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            run_simperf_sweep(stream_lengths=(), shard_counts=(2,))

    def test_prefix_cache_family_doubles_the_grid(self, monkeypatch):
        # The calibration-sized ratio pair is stubbed out: this test checks
        # the grid shape, the bench measures the real thing.
        monkeypatch.setattr(
            "repro.experiments.simperf_sweep.measure_cache_ratio",
            lambda backend, **kwargs: (1.0, []),
        )
        rows = run_simperf_sweep(
            stream_lengths=(100,),
            shard_counts=(2,),
            with_reference=False,
            with_prefix_cache=True,
            trace_memory_at=100,
            seed=0,
        )
        speed = [row for row in rows if row["peak_mem_mb"] is None]
        memory = [row for row in rows if row["peak_mem_mb"] is not None]
        assert [
            (row["router"], row["prefix_cache"]) for row in speed
        ] == [("least-loaded", False), ("cache-aware", True)]
        assert [
            (row["router"], row["prefix_cache"]) for row in memory
        ] == [("least-loaded", False), ("cache-aware", True)]

    def test_cache_ratio_pair_shares_the_timeline(self):
        ratio, rows = measure_cache_ratio(
            _make_backend(), num_requests=200, num_shards=2, repeats=1
        )
        cached, plain = rows
        assert cached["router"] == "cache-aware" and cached["prefix_cache"]
        assert plain["router"] == "least-loaded" and not plain["prefix_cache"]
        assert ratio == pytest.approx(
            cached["events_per_sec"] / plain["events_per_sec"]
        )


class TestSpeedups:
    def test_vs_reference_matches_configuration(self):
        rows = [
            _row("time-sliced", 100.0),
            # Wrong configuration: must be ignored despite closer length.
            _row("streaming", 999.0, router="least-loaded", prefix_cache=False),
            _row("streaming", 150.0),
        ]
        assert speedup_vs_reference(rows) == pytest.approx(1.5)

    def test_vs_reference_without_reference_row(self):
        assert speedup_vs_reference([_row("streaming", 100.0)]) is None

    def test_vs_pre_pr_normalises_machine_speed(self):
        anchor = PRE_PR_BASELINE["anchor_events_per_sec"]
        baseline = PRE_PR_BASELINE["events_per_sec"]
        # A machine exactly as fast as the baseline's: scale cancels.
        rows = [
            _row("time-sliced", anchor),
            _row("streaming", 10 * baseline),
        ]
        assert speedup_vs_pre_pr(rows) == pytest.approx(10.0)
        # Half-speed machine: the baseline is scaled down the same way.
        rows = [
            _row("time-sliced", anchor / 2),
            _row("streaming", 5 * baseline),
        ]
        assert speedup_vs_pre_pr(rows) == pytest.approx(10.0)


class TestCacheRatio:
    def _pair(self, cached_eps: float, plain_eps: float) -> list[dict]:
        return [
            _row(
                "streaming",
                cached_eps,
                num_requests=REFERENCE_REQUESTS,
                num_shards=REFERENCE_SHARDS,
            ),
            _row(
                "streaming",
                plain_eps,
                num_requests=REFERENCE_REQUESTS,
                num_shards=REFERENCE_SHARDS,
                router="least-loaded",
                prefix_cache=False,
            ),
        ]

    def test_divides_the_calibration_pair(self):
        assert cache_aware_ratio(self._pair(150.0, 100.0)) == pytest.approx(1.5)

    def test_later_pair_wins(self):
        # The best-of reference streaming row precedes the paired trial at
        # the same configuration; the paired rows must be the ones divided.
        rows = self._pair(999.0, 999.0) + self._pair(150.0, 100.0)
        assert cache_aware_ratio(rows) == pytest.approx(1.5)

    def test_ignores_other_sizes_and_memory_rows(self):
        rows = self._pair(150.0, 100.0)
        rows[0]["num_requests"] = 1  # off-calibration cache row
        assert cache_aware_ratio(rows) is None
        rows = self._pair(150.0, 100.0)
        rows[1]["peak_mem_mb"] = 50.0  # memory rows never pair
        assert cache_aware_ratio(rows) is None


class TestScalingCheck:
    def test_flat_cost_passes(self):
        check_near_linear_scaling(
            [
                _row("streaming", 1000.0, num_requests=1000),
                _row("streaming", 950.0, num_requests=10_000),
            ]
        )

    def test_super_linear_decay_fails(self):
        with pytest.raises(ConfigurationError):
            check_near_linear_scaling(
                [
                    _row("streaming", 1000.0, num_requests=1000),
                    _row("streaming", 300.0, num_requests=10_000),
                ]
            )

    def test_memory_traced_rows_are_excluded(self):
        # tracemalloc rows are an order slower by construction; they must
        # not register as a scaling regression.
        check_near_linear_scaling(
            [
                _row("streaming", 1000.0, num_requests=1000),
                _row("streaming", 950.0, num_requests=10_000),
                _row("streaming", 90.0, num_requests=10_000, peak_mem_mb=50.0),
            ]
        )


class TestGate:
    def _document(
        self,
        events_per_sec: float,
        reference: float,
        prefix_cache_eps: float | None = None,
    ) -> dict:
        summary: dict[str, object] = {"events_per_sec": events_per_sec}
        if prefix_cache_eps is not None:
            summary["prefix_cache_events_per_sec"] = prefix_cache_eps
        return {
            "summary": summary,
            "rows": [_row("time-sliced", reference)],
        }

    def test_passes_at_parity(self):
        verdict = gate_against_baseline(
            self._document(1000.0, 500.0), self._document(1000.0, 500.0)
        )
        assert verdict["machine_scale"] == pytest.approx(1.0)

    def test_normalises_across_machines(self):
        # Half-speed machine, half the events/sec: no regression.
        verdict = gate_against_baseline(
            self._document(500.0, 250.0), self._document(1000.0, 500.0)
        )
        assert verdict["machine_scale"] == pytest.approx(0.5)

    def test_fails_below_floor(self):
        with pytest.raises(ConfigurationError):
            gate_against_baseline(
                self._document(500.0, 500.0), self._document(1000.0, 500.0)
            )

    def test_failure_message_prints_measured_vs_required_ratio(self):
        # 500 measured vs a 700 floor: the message must state both numbers
        # and their ratio so a red CI run is diagnosable from the log line.
        with pytest.raises(
            ConfigurationError,
            match=r"measured 500 events/s vs required 700 events/s.*"
            r"ratio 0\.71, need >= 1\.00",
        ):
            gate_against_baseline(
                self._document(500.0, 500.0), self._document(1000.0, 500.0)
            )

    def test_cache_family_gates_separately(self):
        # Headline holds at parity while the prefix-cache family regresses
        # below the floor: the gate must still fail, naming the family.
        with pytest.raises(
            ConfigurationError, match=r"prefix-cache regression.*ratio"
        ):
            gate_against_baseline(
                self._document(1000.0, 500.0, prefix_cache_eps=500.0),
                self._document(1000.0, 500.0, prefix_cache_eps=1000.0),
            )

    def test_cache_family_passes_and_reports(self):
        verdict = gate_against_baseline(
            self._document(1000.0, 500.0, prefix_cache_eps=900.0),
            self._document(1000.0, 500.0, prefix_cache_eps=1000.0),
        )
        assert verdict["prefix_cache_events_per_sec"] == pytest.approx(900.0)
        assert verdict["prefix_cache_floor_events_per_sec"] == pytest.approx(
            700.0
        )

    def test_cache_family_optional(self):
        # Baselines from before the prefix-cache family carry no cache
        # summary; the gate must not demand one.
        verdict = gate_against_baseline(
            self._document(1000.0, 500.0, prefix_cache_eps=900.0),
            self._document(1000.0, 500.0),
        )
        assert "prefix_cache_floor_events_per_sec" not in verdict
