"""Tests for the hardware registry and the paper's device numbers."""

import pytest

from repro.hardware import get_gpu, get_hardware, list_hardware
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB, TERA


def test_registry_contains_paper_nodes():
    names = list_hardware()
    for expected in ("1xt4", "1xl4", "2xt4", "4xt4"):
        assert expected in names


def test_l4_matches_paper_figure_3():
    """Fig. 3 gives the L4 instance: 24 GB / 300 GB/s / 242 TFLOPS GPU,
    192 GB / 100 GB/s / 1.3 TFLOPS CPU, 32 GB/s link."""
    node = get_hardware("1xL4")
    assert node.gpu_memory == 24 * GB
    assert node.gpu_bandwidth == 300 * GB
    assert node.gpu_flops == 242 * TERA
    assert node.cpu_memory == 192 * GB
    assert node.cpu_bandwidth == 100 * GB
    assert node.cpu_flops == pytest.approx(1.3 * TERA)
    assert node.cpu_gpu_bandwidth == 32 * GB


def test_t4_node_matches_table_2():
    node = get_hardware("1xT4")
    assert node.gpu_memory == 16 * GB
    assert node.cpu_memory == 192 * GB


def test_multi_t4_nodes_use_bigger_host():
    node = get_hardware("4xT4")
    assert node.tp_size == 4
    assert node.gpu_memory == 64 * GB
    assert node.cpu_memory == 416 * GB


def test_get_gpu_by_name():
    assert get_gpu("t4").memory_bytes == 16 * GB
    assert get_gpu("a100-80g").memory_bytes == 80 * GB


def test_unknown_hardware_raises():
    with pytest.raises(ConfigurationError):
        get_hardware("tpu-v5")
    with pytest.raises(ConfigurationError):
        get_gpu("h100")


def test_lookup_is_case_insensitive():
    assert get_hardware("1xt4").name == get_hardware("1xT4").name


def test_hrm_peak_ordering_assumption():
    """The HRM assumes the GPU level dominates the CPU level (footnote 1)."""
    for name in list_hardware():
        node = get_hardware(name)
        assert node.gpu_flops >= node.cpu_flops
        assert node.gpu_bandwidth >= node.cpu_bandwidth
