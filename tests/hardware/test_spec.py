"""Tests for hardware specifications and tensor-parallel composition."""

import pytest

from repro.hardware.spec import CPUSpec, GPUSpec, HardwareSpec, InterconnectSpec
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB, TERA


def make_node(tp_size=1):
    gpu = GPUSpec(name="gpu", memory_bytes=16 * GB, memory_bandwidth=300 * GB, peak_flops=65 * TERA)
    cpu = CPUSpec(name="cpu", memory_bytes=192 * GB, memory_bandwidth=100 * GB, peak_flops=1.3 * TERA)
    link = InterconnectSpec(name="pcie", bandwidth=12 * GB)
    return HardwareSpec(name="node", gpu=gpu, cpu=cpu, interconnect=link, tp_size=tp_size)


def test_table1_symbols_single_gpu():
    node = make_node()
    assert node.gpu_memory == 16 * GB
    assert node.cpu_memory == 192 * GB
    assert node.gpu_bandwidth == 300 * GB
    assert node.cpu_bandwidth == 100 * GB
    assert node.cpu_gpu_bandwidth == 12 * GB
    assert node.gpu_flops == 65 * TERA
    assert node.cpu_flops == 1.3 * TERA


def test_tensor_parallel_scales_gpu_but_not_cpu_or_link():
    node = make_node().with_tensor_parallel(4)
    assert node.tp_size == 4
    assert node.gpu_memory == 64 * GB
    assert node.gpu_bandwidth == 1200 * GB
    assert node.gpu_flops == 260 * TERA
    # Shared within the node (paper §4.3 / §5.3).
    assert node.cpu_memory == 192 * GB
    assert node.cpu_gpu_bandwidth == 12 * GB


def test_with_cpu_memory_returns_modified_copy():
    node = make_node()
    bigger = node.with_cpu_memory(384 * GB)
    assert bigger.cpu_memory == 384 * GB
    assert node.cpu_memory == 192 * GB  # original untouched


def test_with_interconnect_bandwidth():
    node = make_node().with_interconnect_bandwidth(32 * GB)
    assert node.cpu_gpu_bandwidth == 32 * GB


def test_with_cpu_scaling_multiplies_cpu_resources():
    node = make_node().with_cpu_scaling(2.0)
    assert node.cpu_bandwidth == 200 * GB
    assert node.cpu_flops == pytest.approx(2.6 * TERA)
    assert node.cpu_memory == 384 * GB


def test_describe_mentions_gpu_and_cpu():
    text = make_node().describe()
    assert "gpu" in text and "cpu" in text


@pytest.mark.parametrize("field", ["memory_bytes", "memory_bandwidth", "peak_flops"])
def test_gpu_spec_rejects_non_positive(field):
    params = dict(name="g", memory_bytes=1.0, memory_bandwidth=1.0, peak_flops=1.0)
    params[field] = 0
    with pytest.raises(ConfigurationError):
        GPUSpec(**params)


def test_interconnect_rejects_negative_latency():
    with pytest.raises(ConfigurationError):
        InterconnectSpec(name="pcie", bandwidth=1.0, latency=-1.0)


def test_tp_size_must_be_positive():
    with pytest.raises(ConfigurationError):
        make_node().with_tensor_parallel(0)
