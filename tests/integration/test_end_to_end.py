"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core.policy import Policy
from repro.engine import (
    MoETransformer,
    MoEWeights,
    PipelinedExecutor,
    ReferenceExecutor,
    ToyTokenizer,
    outputs_equivalent,
)
from repro.experiments.settings import get_setting
from repro.runtime.memory_manager import MemoryPool
from repro.runtime.kv_cache import KVCacheManager
from repro.systems import MoELightningSystem
from repro.workloads import generate_requests, mtbench
from repro.workloads.batching import batch_requests, pad_requests


def test_workload_to_batching_to_policy_pipeline(mixtral, t4_node):
    """Requests sampled from MTBench flow through Algorithm 2 into micro-batches
    that respect the policy the optimizer selects."""
    workload = mtbench(generation_len=64, num_requests=512)
    system = MoELightningSystem(mixtral, t4_node, padded=False, max_sim_layers=2)
    policy = system.select_policy(workload)
    requests = generate_requests(workload, count=min(512, policy.batch_size), seed=3)
    result = batch_requests(
        requests,
        num_micro_batches=policy.num_micro_batches,
        micro_batch_size=policy.micro_batch_size,
        generation_len=workload.generation_len,
    )
    assert result.num_accepted == len(requests)
    assert all(mb.size <= policy.micro_batch_size for mb in result.micro_batches)


def test_padded_requests_match_flexgen_assumption(mixtral):
    workload = mtbench(generation_len=32, num_requests=64)
    requests = generate_requests(workload, seed=1)
    padded = pad_requests(requests)
    longest = max(r.input_len for r in requests)
    assert all(r.effective_input_len == longest for r in padded)


def test_kv_cache_manager_supports_full_batch(tiny_model):
    """The paged KV cache can hold every sequence of a small batch and frees
    cleanly afterwards."""
    pool = MemoryPool(name="cpu", capacity_bytes=512e6, page_bytes=256e3)
    manager = KVCacheManager(tiny_model, pool)
    workload = mtbench(generation_len=8, num_requests=32)
    requests = generate_requests(workload, seed=0)
    for request in requests:
        assert manager.can_admit(request.input_len, request.generation_len)
        manager.register_sequence(request.request_id, request.input_len)
    assert manager.total_tokens == sum(r.input_len for r in requests)
    manager.release_all()
    assert pool.used_pages == 0


def test_tokenizer_engine_round_trip(tiny_model):
    """Text -> tokens -> generation -> decode, with pipelined == reference."""
    tokenizer = ToyTokenizer(vocab_size=tiny_model.vocab_size)
    prompts_text = [
        "reproduce the MoE Lightning paper",
        "high throughput inference on memory constrained GPUs",
        "pipeline schedules overlap compute and transfers",
        "the roofline model bounds attainable performance",
    ]
    token_lists = tokenizer.encode_batch(prompts_text, pad_to=6)
    prompts = np.array(token_lists)
    weights = MoEWeights.initialize(tiny_model, seed=9)
    model = MoETransformer(weights)
    reference = ReferenceExecutor(model).generate(prompts, generation_len=5)
    policy = Policy(batch_size=4, micro_batch_size=2, attention_on_gpu=False)
    pipelined = PipelinedExecutor(model, policy).generate(prompts, generation_len=5)
    assert outputs_equivalent(reference, pipelined)
    decoded = tokenizer.decode(list(reference.generated_tokens[:, 0]))
    assert len(decoded.split()) == 5


def test_system_result_rows_feed_report_rendering(mixtral, t4_node):
    from repro.experiments import render_rows

    workload = mtbench(generation_len=32)
    result = MoELightningSystem(mixtral, t4_node, padded=True, max_sim_layers=2).run(workload)
    table = render_rows([result.as_row()], title="single run")
    assert "moe-lightning(p)" in table
    assert "single run" in table


@pytest.mark.parametrize("setting_name", ["S1", "S2", "S6", "S7", "S8", "S9"])
def test_every_paper_setting_produces_a_feasible_policy(setting_name):
    """The optimizer finds a feasible policy for every Table 2 setting."""
    setting = get_setting(setting_name)
    workload = setting.workload("mtbench", generation_len=64)
    system = MoELightningSystem(setting.model, setting.hardware, padded=True, max_sim_layers=2)
    policy = system.select_policy(workload)
    assert system.memory_model(workload).is_feasible(policy)
