"""Integration tests asserting the paper's headline qualitative claims.

Each test names the paper statement it reproduces.  Absolute numbers are not
compared (the substrate is a simulator, not the authors' testbed); only the
orderings, directions and rough factors the paper reports.
"""

import pytest

from repro.core.optimizer import PolicyOptimizer
from repro.experiments.settings import get_setting
from repro.systems import DeepSpeedZeroSystem, FlexGenSystem, MoELightningSystem
from repro.workloads import mtbench


@pytest.fixture(scope="module")
def s1():
    return get_setting("S1")


@pytest.fixture(scope="module")
def s1_results(s1):
    """All five Fig. 7 systems on MTBench @ S1 with generation length 128."""
    workload = s1.workload("mtbench", generation_len=128)
    kwargs = {"max_sim_layers": 4}
    systems = {
        "flexgen": FlexGenSystem(s1.model, s1.hardware, **kwargs),
        "flexgen(c)": FlexGenSystem(s1.model, s1.hardware, cpu_attention=True, **kwargs),
        "deepspeed": DeepSpeedZeroSystem(s1.model, s1.hardware, **kwargs),
        "moe-lightning(p)": MoELightningSystem(s1.model, s1.hardware, padded=True, **kwargs),
        "moe-lightning": MoELightningSystem(s1.model, s1.hardware, padded=False, **kwargs),
    }
    return {name: system.run(workload) for name, system in systems.items()}


def test_abstract_claim_large_speedup_over_baselines(s1_results):
    """Abstract: 'up to 10.3x higher throughput than state-of-the-art
    offloading-enabled systems for Mixtral 8x7B on a single T4'."""
    best_baseline = max(
        s1_results[name].generation_throughput
        for name in ("flexgen", "flexgen(c)", "deepspeed")
    )
    ours = s1_results["moe-lightning"].generation_throughput
    assert ours > 3 * best_baseline


def test_padded_variant_still_wins(s1_results):
    """Abstract: 'up to ... 3.5x (with request padding)'."""
    best_baseline = max(
        s1_results[name].generation_throughput
        for name in ("flexgen", "flexgen(c)", "deepspeed")
    )
    ours = s1_results["moe-lightning(p)"].generation_throughput
    assert ours > 1.5 * best_baseline
    assert ours < 10 * best_baseline  # padding keeps the gain bounded


def test_request_padding_costs_roughly_3x(s1_results):
    """§5.2: MoE-Lightning without padding is ~3x faster than MoE-Lightning(p)
    on MTBench because padding inflates memory and attention work."""
    ratio = (
        s1_results["moe-lightning"].generation_throughput
        / s1_results["moe-lightning(p)"].generation_throughput
    )
    assert 2.0 < ratio < 6.0


def test_deepspeed_is_weight_transfer_bound_at_small_batch(s1_results):
    """Tab. 4 discussion: DeepSpeed uses the smallest batch (KV on GPU) and is
    constrained by weight-transfer overhead."""
    deepspeed = s1_results["deepspeed"]
    flexgen = s1_results["flexgen"]
    assert deepspeed.policy.batch_size < flexgen.policy.batch_size / 4
    assert deepspeed.generation_throughput < flexgen.generation_throughput


def test_cpu_attention_selected_on_memory_constrained_hardware(s1, mtbench_workload):
    """§4: 'for the memory-constrained scenarios we target, CPU attention is
    consistently better than GPU attention according to our performance model'."""
    optimizer = PolicyOptimizer(
        model=s1.model, hardware=s1.hardware, workload=mtbench_workload, padded=True
    )
    assert not optimizer.search().policy.attention_on_gpu


def test_gpu_rich_hardware_prefers_resident_weights(mixtral, mtbench_workload):
    """§6.3: with 2x A100-80G the model fits on the GPUs and offloading is
    only chosen as the interconnect gets faster."""
    from repro.experiments.hardware_sweep import base_a100_hardware

    slow_link = base_a100_hardware().with_interconnect_bandwidth(25e9)
    policy = PolicyOptimizer(
        model=mixtral, hardware=slow_link, workload=mtbench_workload
    ).search().policy
    assert policy.weights_gpu_ratio > 0.9


def test_flexgen_fails_to_scale_to_more_gpus_but_moe_lightning_improves(mixtral_8x22b):
    """§5.3: FlexGen fails to scale from 2xT4 to 4xT4 within a node, while
    MoE-Lightning(p) improves."""
    s6, s7 = get_setting("S6"), get_setting("S7")
    workload = mtbench(generation_len=64)
    flexgen_2 = FlexGenSystem(s6.model, s6.hardware, max_sim_layers=2).run(workload)
    flexgen_4 = FlexGenSystem(s7.model, s7.hardware, max_sim_layers=2).run(workload)
    lightning_2 = MoELightningSystem(s6.model, s6.hardware, padded=True, max_sim_layers=2).run(workload)
    lightning_4 = MoELightningSystem(s7.model, s7.hardware, padded=True, max_sim_layers=2).run(workload)
    assert flexgen_4.generation_throughput < 1.3 * flexgen_2.generation_throughput
    assert lightning_4.generation_throughput > 1.05 * lightning_2.generation_throughput
    # And MoE-Lightning keeps a healthy margin over FlexGen on both nodes.
    assert lightning_2.generation_throughput > flexgen_2.generation_throughput
    assert lightning_4.generation_throughput > flexgen_4.generation_throughput


def test_generation_length_sweet_spot_for_flexgen(s1):
    """§5.2: FlexGen's throughput first rises then falls with generation
    length (KV pressure), while MoE-Lightning(p) does not collapse."""
    lengths = (32, 128, 256)
    flexgen = []
    lightning = []
    for generation_len in lengths:
        workload = s1.workload("mtbench", generation_len=generation_len)
        flexgen.append(
            FlexGenSystem(s1.model, s1.hardware, max_sim_layers=2).run(workload)
        )
        lightning.append(
            MoELightningSystem(s1.model, s1.hardware, padded=True, max_sim_layers=2).run(workload)
        )
    flexgen_throughputs = [r.generation_throughput for r in flexgen]
    lightning_throughputs = [r.generation_throughput for r in lightning]
    # FlexGen loses ground at the longest generation length relative to its best.
    assert flexgen_throughputs[-1] < max(flexgen_throughputs)
    # MoE-Lightning(p) avoids the long-generation collapse under S1.
    assert lightning_throughputs[-1] > 0.8 * max(lightning_throughputs)
    # And the batch size FlexGen can afford shrinks as generation grows.
    assert flexgen[-1].policy.batch_size <= flexgen[0].policy.batch_size
