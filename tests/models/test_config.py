"""Tests for ModelConfig and its derived quantities."""

import pytest

from repro.models.config import Attention, DataType, MLPKind, ModelConfig
from repro.utils.errors import ConfigurationError


def make_config(**overrides):
    params = dict(
        name="test",
        num_layers=4,
        hidden_size=64,
        intermediate_size=128,
        num_query_heads=8,
        num_kv_heads=2,
        num_experts=4,
        top_k=2,
        vocab_size=256,
    )
    params.update(overrides)
    return ModelConfig(**params)


def test_head_dimensions():
    config = make_config()
    assert config.head_dim == 8
    assert config.kv_dim == 16
    assert config.gqa_group_size == 4


def test_is_moe_flag():
    assert make_config().is_moe
    assert not make_config(num_experts=1, top_k=1).is_moe


def test_dtype_from_label_round_trip():
    assert DataType.from_label("float16") is DataType.FLOAT16
    assert DataType.from_label("int4").num_bytes == 0.5
    with pytest.raises(ConfigurationError):
        DataType.from_label("float8")


def test_kv_cache_dtype_defaults_to_weight_dtype():
    config = make_config(dtype=DataType.FLOAT16)
    assert config.kv_cache_dtype is DataType.FLOAT16
    quantized = make_config(dtype=DataType.FLOAT16, kv_dtype=DataType.INT4)
    assert quantized.kv_cache_dtype is DataType.INT4


def test_ffn_matrices_per_expert_depends_on_mlp_kind():
    assert make_config(mlp=MLPKind.GATED).ffn_matrices_per_expert == 3
    assert make_config(mlp=MLPKind.STANDARD).ffn_matrices_per_expert == 2


def test_param_counts_are_consistent():
    config = make_config()
    per_layer = config.params_per_layer()
    assert per_layer == (
        config.attention_params_per_layer()
        + config.ffn_params_per_layer()
        + 2 * config.hidden_size
    )
    total = config.total_params()
    assert total == config.num_layers * per_layer + config.embedding_params() + config.hidden_size


def test_active_params_less_than_total_for_moe():
    config = make_config()
    assert config.active_params_per_token() < config.total_params()


def test_active_params_equal_total_for_dense():
    config = make_config(num_experts=1, top_k=1)
    assert config.active_params_per_token() == config.total_params()


def test_describe_mentions_name_and_experts():
    text = make_config().describe()
    assert "test" in text
    assert "experts=4" in text


@pytest.mark.parametrize(
    "overrides",
    [
        {"num_layers": 0},
        {"hidden_size": -1},
        {"num_query_heads": 6, "num_kv_heads": 4},  # kv must divide q
        {"hidden_size": 65},  # heads must divide hidden
        {"top_k": 5},  # top_k > experts
    ],
)
def test_invalid_configs_rejected(overrides):
    with pytest.raises(ConfigurationError):
        make_config(**overrides)


def test_attention_default_is_gqa():
    assert make_config().attention is Attention.GROUPED_QUERY
