"""Tests for the per-operator FLOP/byte accounting."""

import pytest

from repro.models import flops
from repro.models.config import DataType
from repro.utils.errors import ConfigurationError


def test_operator_cost_total_bytes_and_intensity():
    cost = flops.OperatorCost(
        name="x", flops=100.0, weight_bytes=10.0, activation_bytes=5.0, kv_bytes=5.0
    )
    assert cost.total_bytes == 20.0
    assert cost.operational_intensity == pytest.approx(5.0)
    assert cost.intensity_excluding_weights() == pytest.approx(10.0)


def test_operator_cost_combine_and_scale():
    a = flops.OperatorCost(name="a", flops=1.0, weight_bytes=2.0)
    b = flops.OperatorCost(name="b", flops=3.0, activation_bytes=4.0)
    combined = a.combine(b)
    assert combined.flops == 4.0
    assert combined.weight_bytes == 2.0
    assert combined.activation_bytes == 4.0
    scaled = combined.scaled(2.0)
    assert scaled.flops == 8.0


def test_operator_cost_rejects_negative_components():
    with pytest.raises(ConfigurationError):
        flops.OperatorCost(name="bad", flops=-1.0)


def test_qkv_projection_flops_scale_with_tokens(mixtral):
    one = flops.qkv_proj_cost(mixtral, 1)
    many = flops.qkv_proj_cost(mixtral, 64)
    assert many.flops == pytest.approx(64 * one.flops)
    # Weight bytes are independent of the token count.
    assert many.weight_bytes == one.weight_bytes


def test_attention_decode_intensity_independent_of_batch(mixtral):
    small = flops.attention_decode_cost(mixtral, batch=1, context_len=512)
    large = flops.attention_decode_cost(mixtral, batch=128, context_len=512)
    assert small.operational_intensity == pytest.approx(
        large.operational_intensity, rel=1e-6
    )


def test_attention_decode_kv_bytes_scale_with_context(mixtral):
    short = flops.attention_decode_cost(mixtral, batch=8, context_len=128)
    long = flops.attention_decode_cost(mixtral, batch=8, context_len=1024)
    assert long.kv_bytes == pytest.approx(8 * short.kv_bytes)


def test_gqa_reduces_kv_bytes_but_not_flops(mixtral):
    """GQA keeps query-head FLOPs but shrinks the KV cache traffic."""
    cost = flops.attention_decode_cost(mixtral, batch=1, context_len=512)
    ratio = mixtral.num_query_heads / mixtral.num_kv_heads
    # Intensity is roughly (2 * flops per q head) / (kv bytes per kv head).
    assert ratio == 4
    assert cost.operational_intensity > 1.0


def test_int4_kv_cache_raises_attention_intensity(mixtral):
    from dataclasses import replace

    quantized = replace(mixtral, kv_dtype=DataType.INT4)
    base = flops.attention_decode_cost(mixtral, 1, 512).operational_intensity
    quant = flops.attention_decode_cost(quantized, 1, 512).operational_intensity
    assert quant > 2 * base


def test_ffn_cost_flops_scale_with_top_k(mixtral):
    cost = flops.ffn_cost(mixtral, tokens=64)
    expected = 2.0 * 64 * mixtral.top_k * mixtral.expert_params()
    assert cost.flops >= expected  # router adds a little on top
    assert cost.flops < expected * 1.01


def test_ffn_weight_bytes_saturate_at_all_experts(mixtral):
    small = flops.ffn_cost(mixtral, tokens=1)
    large = flops.ffn_cost(mixtral, tokens=4096)
    all_experts = (
        mixtral.num_experts * mixtral.expert_params() * mixtral.dtype.num_bytes
    )
    assert small.weight_bytes < all_experts
    assert large.weight_bytes <= all_experts * 1.01
    assert large.weight_bytes > 0.99 * all_experts


def test_ffn_intensity_grows_with_batch(mixtral):
    small = flops.ffn_cost(mixtral, tokens=32)
    large = flops.ffn_cost(mixtral, tokens=1024)
    assert large.operational_intensity > small.operational_intensity


def test_explicit_experts_touched_controls_weight_bytes(mixtral):
    cost = flops.ffn_cost(mixtral, tokens=8, experts_touched=2)
    expected = 2 * mixtral.expert_params() * mixtral.dtype.num_bytes
    assert cost.weight_bytes == pytest.approx(expected, rel=0.01)


def test_prefill_attention_flops_quadratic_in_prompt(mixtral):
    short = flops.attention_prefill_cost(mixtral, batch=1, prompt_len=128)
    long = flops.attention_prefill_cost(mixtral, batch=1, prompt_len=256)
    assert long.flops / short.flops == pytest.approx(4.0, rel=0.05)


def test_layer_decode_cost_has_expected_tasks(mixtral):
    parts = flops.layer_decode_cost(mixtral, batch=32, context_len=256)
    assert set(parts) == {"pre_attn", "attention", "post_attn"}
    assert parts["post_attn"].flops > parts["pre_attn"].flops


def test_lm_head_cost_scales_with_vocab(mixtral):
    cost = flops.lm_head_cost(mixtral, tokens=4)
    assert cost.flops == pytest.approx(
        2.0 * 4 * mixtral.hidden_size * mixtral.vocab_size
    )


@pytest.mark.parametrize("tokens", [0, -1])
def test_costs_reject_non_positive_tokens(mixtral, tokens):
    with pytest.raises(ConfigurationError):
        flops.qkv_proj_cost(mixtral, tokens)
