"""Tests for weight/KV/activation memory accounting."""

import pytest

from repro.models import memory
from repro.utils.errors import ConfigurationError


def test_model_weight_bytes_matches_param_count(mixtral):
    assert memory.model_weight_bytes(mixtral) == pytest.approx(
        mixtral.total_params() * mixtral.dtype.num_bytes
    )
    # Mixtral 8x7B in fp16 is roughly 87-94 GB.
    assert 85e9 < memory.model_weight_bytes(mixtral) < 97e9


def test_layer_weight_split_adds_up(mixtral):
    total = memory.layer_weight_bytes(mixtral)
    attention = memory.attention_weight_bytes(mixtral)
    ffn = memory.ffn_weight_bytes(mixtral)
    norms = 2 * mixtral.hidden_size * mixtral.dtype.num_bytes
    assert total == pytest.approx(attention + ffn + norms)
    assert ffn > 10 * attention  # experts dominate a MoE layer


def test_kv_cache_bytes_per_token(mixtral):
    per_layer = memory.kv_cache_bytes_per_token_per_layer(mixtral)
    assert per_layer == pytest.approx(2 * mixtral.kv_dim * mixtral.dtype.num_bytes)
    assert memory.kv_cache_bytes_per_token(mixtral) == pytest.approx(
        per_layer * mixtral.num_layers
    )


def test_activation_bytes_scale_with_tokens(mixtral):
    assert memory.activation_bytes(mixtral, 128) == pytest.approx(
        2 * memory.activation_bytes(mixtral, 64), rel=1e-6
    )


def test_activation_bytes_rejects_zero_tokens(mixtral):
    with pytest.raises(ConfigurationError):
        memory.activation_bytes(mixtral, 0)


def test_memory_footprint_total_and_fits():
    footprint = memory.MemoryFootprint(
        weights=10.0, kv_cache=5.0, activations=2.0, workspace=3.0
    )
    assert footprint.total == 20.0
    assert footprint.fits_within(20.0)
    assert not footprint.fits_within(19.9)


def test_memory_footprint_combine_adds_categories():
    a = memory.MemoryFootprint(weights=1.0, kv_cache=2.0)
    b = memory.MemoryFootprint(activations=3.0, workspace=4.0)
    combined = a.combine(b)
    assert combined.total == 10.0
    assert combined.as_dict()["total"] == 10.0


def test_memory_footprint_rejects_negative_values():
    with pytest.raises(ConfigurationError):
        memory.MemoryFootprint(weights=-1.0)


def test_embedding_weight_bytes_untied(mixtral):
    expected = 2 * mixtral.vocab_size * mixtral.hidden_size * mixtral.dtype.num_bytes
    assert memory.embedding_weight_bytes(mixtral) == pytest.approx(expected)
