"""Tests for the model registry and the paper's model configurations."""

import pytest

from repro.models import get_model, list_models, register_model
from repro.models.registry import MODEL_REGISTRY
from repro.utils.errors import ConfigurationError


def test_registry_contains_paper_models():
    names = list_models()
    for expected in ("mixtral-8x7b", "mixtral-8x22b", "dbrx", "tiny-moe"):
        assert expected in names


def test_get_model_is_case_insensitive():
    assert get_model("Mixtral-8x7B").name == "mixtral-8x7b"


def test_get_model_unknown_name_raises():
    with pytest.raises(ConfigurationError, match="unknown model"):
        get_model("gpt-5")


def test_register_model_rejects_duplicates():
    with pytest.raises(ConfigurationError):
        register_model("mixtral-8x7b", MODEL_REGISTRY["mixtral-8x7b"])


def test_mixtral_8x7b_matches_public_architecture(mixtral):
    assert mixtral.num_layers == 32
    assert mixtral.hidden_size == 4096
    assert mixtral.intermediate_size == 14336
    assert mixtral.num_query_heads == 32
    assert mixtral.num_kv_heads == 8
    assert mixtral.num_experts == 8
    assert mixtral.top_k == 2
    # ~46-47B total parameters, ~12-13B active per token.
    assert 45e9 < mixtral.total_params() < 48e9
    assert 12e9 < mixtral.active_params_per_token() < 14e9


def test_mixtral_8x22b_total_params(mixtral_8x22b):
    assert 135e9 < mixtral_8x22b.total_params() < 145e9
    assert mixtral_8x22b.num_layers == 56


def test_dbrx_matches_published_shape(dbrx):
    assert dbrx.num_experts == 16
    assert dbrx.top_k == 4
    assert 125e9 < dbrx.total_params() < 140e9


def test_tiny_moe_is_actually_tiny(tiny_model):
    assert tiny_model.total_params() < 1e6
    assert tiny_model.is_moe


def test_expert_ffn_memory_dominates_mixtral_8x22b(mixtral_8x22b):
    """The paper notes >256 GB for the expert FFN weights of Mixtral 8x22B."""
    from repro.models.memory import ffn_weight_bytes

    expert_bytes = ffn_weight_bytes(mixtral_8x22b) * mixtral_8x22b.num_layers
    assert expert_bytes > 250e9
