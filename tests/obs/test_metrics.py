"""The streaming metric registry: counters, gauges and the P² sketch."""

import math

import numpy as np
import pytest

from repro.obs import MetricRegistry, P2Quantile, StreamingHistogram


class TestP2Quantile:
    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_tiny_stream_is_exact(self):
        sketch = P2Quantile(0.5)
        for value in [3.0, 1.0, 4.0]:
            sketch.add(value)
        assert sketch.value() == pytest.approx(float(np.percentile([3, 1, 4], 50)))

    @pytest.mark.parametrize("q", [0.5, 0.95, 0.99])
    @pytest.mark.parametrize(
        "sampler",
        [
            lambda rng, n: rng.uniform(0.0, 10.0, n),
            lambda rng, n: rng.normal(50.0, 10.0, n),
            lambda rng, n: rng.lognormal(1.0, 0.75, n),
            lambda rng, n: rng.exponential(3.0, n),
        ],
        ids=["uniform", "normal", "lognormal", "exponential"],
    )
    def test_within_two_percent_of_numpy_on_5k_stream(self, q, sampler):
        # The acceptance bound: p50/p95/p99 within 2% of the exact
        # percentile on a 5k-request latency stream.
        rng = np.random.default_rng(42)
        values = sampler(rng, 5000)
        sketch = P2Quantile(q)
        for value in values:
            sketch.add(float(value))
        exact = float(np.percentile(values, q * 100))
        assert sketch.value() == pytest.approx(exact, rel=0.02)

    def test_rejects_bad_quantile(self):
        with pytest.raises(Exception):
            P2Quantile(0.0)
        with pytest.raises(Exception):
            P2Quantile(1.0)


class TestStreamingHistogram:
    def test_summary_keys_and_moments(self):
        histogram = StreamingHistogram()
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert set(summary) >= {"p50", "p95", "p99"}

    def test_empty_summary_is_nan_quantiles(self):
        summary = StreamingHistogram().summary()
        assert summary["count"] == 0
        assert math.isnan(summary["p50"])


class TestMetricRegistry:
    def test_get_or_create_and_snapshot(self):
        registry = MetricRegistry()
        registry.counter("requests").inc()
        registry.counter("requests").inc(2.0)
        registry.gauge("depth").set(7.0)
        registry.histogram("ttft").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == 3.0
        assert snapshot["gauges"]["depth"] == 7.0
        assert snapshot["histograms"]["ttft"]["count"] == 1
        assert sorted(registry.names()) == ["depth", "requests", "ttft"]

    def test_counter_rejects_negative(self):
        registry = MetricRegistry()
        with pytest.raises(Exception):
            registry.counter("bad").inc(-1.0)
