"""Time-series sampling semantics, JSONL export and sparklines."""

import json

import pytest

from repro.obs import TimeSeriesSampler
from repro.utils.ascii_plot import sparkline


class TestSamplingSemantics:
    def test_boundaries_carry_pre_event_state(self):
        # State is constant between events: the snapshot offered at an
        # event covers every boundary crossed since the previous event.
        sampler = TimeSeriesSampler(1.0)
        sampler.observe(0.5, lambda: {"depth": 0.0})  # t=0 boundary
        sampler.observe(3.2, lambda: {"depth": 2.0})  # t=1, 2, 3 boundaries
        times = [s["t"] for s in sampler.samples]
        assert times == [0.0, 1.0, 2.0, 3.0]
        assert [s["depth"] for s in sampler.samples] == [0.0, 2.0, 2.0, 2.0]

    def test_observe_excludes_now_flush_includes_it(self):
        sampler = TimeSeriesSampler(1.0)
        sampler.observe(2.0, lambda: {"v": 1.0})  # t=0, 1 — not 2
        assert [s["t"] for s in sampler.samples] == [0.0, 1.0]
        sampler.flush(2.0, lambda: {"v": 5.0})
        assert [s["t"] for s in sampler.samples] == [0.0, 1.0, 2.0]
        assert sampler.samples[-1]["v"] == 5.0

    def test_series_views(self):
        sampler = TimeSeriesSampler(0.5)
        sampler.flush(1.0, lambda: {"a": 1.0, "b": 2.0})
        assert sampler.series_names() == ["a", "b"]
        ts, values = sampler.series("a")
        assert ts == [0.0, 0.5, 1.0]
        assert values == [1.0, 1.0, 1.0]

    def test_rejects_non_positive_interval(self):
        with pytest.raises(Exception):
            TimeSeriesSampler(0.0)


class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        sampler = TimeSeriesSampler(1.0)
        sampler.flush(2.0, lambda: {"depth": 3.0})
        path = tmp_path / "series.jsonl"
        sampler.write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert lines[0] == {"t": 0.0, "depth": 3.0}

    def test_empty_jsonl_is_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        TimeSeriesSampler(1.0).write_jsonl(path)
        assert path.read_text() == ""

    def test_render_labels_and_range(self):
        sampler = TimeSeriesSampler(1.0)
        values = iter([0.0, 5.0, 10.0])
        sampler.flush(2.0, lambda: {"depth": next(values)})
        rendered = sampler.render(["depth"])
        assert "depth" in rendered
        assert "[0, 10]" in rendered
        assert TimeSeriesSampler(1.0).render() == "(no samples)"


class TestSparkline:
    def test_levels_scale_with_values(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series_uses_lowest_level(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_resamples_to_width(self):
        assert len(sparkline(list(range(100)), width=20)) == 20
