"""Telemetry threaded through the serving stack: the ISSUE's acceptance bar.

* Telemetry disabled → results bit-for-bit identical to a telemetry-on
  run of the same stream (the hooks never mutate serving state);
* on a 2-shard, overlap-on chat run the per-lane span sums reproduce
  ``decode_busy_s`` / ``prefill_busy_s`` / ``overlap_fraction`` exactly
  (``==``, not approx);
* spans never overlap on one lane, and every finished request's lifecycle
  chain (queue → prefill → decode) is gapless.
"""

import pytest

from repro.experiments.serving_sweep import offline_capacity
from repro.obs import Telemetry, validate_chrome_trace
from repro.serving import (
    PoissonProcess,
    ServingSystem,
    ShardedServingSystem,
)
from repro.serving.queue import RequestState
from repro.systems import MoELightningSystem
from repro.workloads import chat

NUM_REQUESTS = 32
SEED = 0


@pytest.fixture(scope="module")
def setup(mixtral, t4_node):
    workload = chat(generation_len=16, num_requests=NUM_REQUESTS)
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    rate = 3.0 * offline_capacity(backend, workload, policy)
    return backend, workload, policy, rate


def run_sharded(setup, telemetry=None):
    backend, workload, policy, rate = setup
    sharded = ShardedServingSystem(
        backend,
        workload,
        num_shards=2,
        policy=policy,
        router="round-robin",
        prefix_cache=True,
        overlap=True,
    )
    return sharded.run(
        PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED, telemetry=telemetry
    )


@pytest.fixture(scope="module")
def traced(setup):
    telemetry = Telemetry(sample_interval=2.0)
    result = run_sharded(setup, telemetry=telemetry)
    return result, telemetry


class TestZeroImpact:
    def test_disabled_is_bit_for_bit_identical(self, setup, traced):
        result_on, _ = traced
        result_off = run_sharded(setup, telemetry=None)
        assert result_off.report == result_on.report
        assert result_off.makespan == result_on.makespan
        assert result_off.admission_stats == result_on.admission_stats
        for off, on in zip(result_off.requests, result_on.requests):
            assert off.arrival_time == on.arrival_time
            assert off.admit_time == on.admit_time
            assert off.first_token_time == on.first_token_time
            assert off.finish_time == on.finish_time
            assert off.shard_id == on.shard_id
            assert off.tokens_decoded == on.tokens_decoded

    def test_single_engine_disabled_identical(self, setup):
        backend, workload, policy, rate = setup
        process = PoissonProcess(rate)
        on = ServingSystem(backend, workload, policy=policy, overlap=True).run(
            process, count=NUM_REQUESTS, seed=SEED, telemetry=Telemetry()
        )
        off = ServingSystem(backend, workload, policy=policy, overlap=True).run(
            process, count=NUM_REQUESTS, seed=SEED
        )
        assert off.report == on.report
        assert [sr.finish_time for sr in off.requests] == [
            sr.finish_time for sr in on.requests
        ]


class TestLaneAccounting:
    def test_lane_sums_reproduce_stream_busy_exactly(self, traced):
        result, telemetry = traced
        trace = telemetry.trace
        for stats in result.shard_stats:
            label = f"shard{stats.shard_id}"
            assert trace.lane_busy(f"{label}/decode") == stats.decode_stream_busy
            assert trace.lane_busy(f"{label}/prefill") == stats.prefill_stream_busy
            assert trace.lane_busy(f"{label}/weight") == stats.busy_time

    def test_cluster_totals_reproduce_as_row_exactly(self, traced):
        result, telemetry = traced
        trace = telemetry.trace
        row = result.as_row()
        decode = sum(
            trace.lane_busy(f"shard{s.shard_id}/decode")
            for s in result.shard_stats
        )
        prefill = sum(
            trace.lane_busy(f"shard{s.shard_id}/prefill")
            for s in result.shard_stats
        )
        assert decode == row["decode_busy_s"]
        assert prefill == row["prefill_busy_s"]

    def test_overlap_fraction_reconstructed_exactly(self, traced):
        # Per step: overlapped = (decode + prefill) - duration (never
        # clamped: a pure step's sum equals its duration, a mixed step's
        # duration is max(decode, prefill)), so the trace alone
        # reconstructs each shard's overlap fraction bit-for-bit.
        result, telemetry = traced
        trace = telemetry.trace
        assert result.overlap_fraction > 0.0
        for stats in result.shard_stats:
            label = f"shard{stats.shard_id}"
            decode = {s.start: s.duration for s in trace.spans_on(f"{label}/decode")}
            prefill = {s.start: s.duration for s in trace.spans_on(f"{label}/prefill")}
            overlapped = busy = 0.0
            for span in trace.spans_on(f"{label}/weight"):
                overlapped += max(
                    0.0,
                    decode.get(span.start, 0.0)
                    + prefill.get(span.start, 0.0)
                    - span.duration,
                )
                busy += span.duration
            fraction = overlapped / busy if busy > 0 else 0.0
            assert fraction == stats.overlap_fraction

    def test_lanes_never_overlap(self, traced):
        _, telemetry = traced
        telemetry.trace.verify_lanes()


class TestRequestChains:
    def test_chains_are_gapless_and_complete(self, traced):
        result, telemetry = traced
        trace = telemetry.trace
        trace.verify_request_chains()
        finished = [
            sr for sr in result.requests if sr.state is RequestState.FINISHED
        ]
        traced_ids = {rs.request_id for rs in trace.request_spans}
        assert traced_ids == {sr.request_id for sr in finished}
        for sr in finished:
            chain = trace.request_chain(sr.request_id)
            assert [rs.phase for rs in chain] == ["queue", "prefill", "decode"]
            assert chain[0].start == sr.arrival_time
            assert chain[-1].end == sr.finish_time

    def test_latency_histograms_match_report_means(self, traced):
        result, telemetry = traced
        snapshot = telemetry.registry.snapshot()
        ttft = snapshot["histograms"]["ttft"]
        assert ttft["count"] == result.report.num_completed
        assert ttft["mean"] == pytest.approx(result.report.mean_ttft)

    def test_admission_counters_match_stats(self, traced):
        result, telemetry = traced
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["admission.admitted"] == result.admission_stats["admitted"]
        assert counters["requests.routed"] == result.report.num_offered
        assert counters["requests.finished"] == result.report.num_completed
        assert (
            counters["tokens.generated"] == result.report.tokens_generated
        )


class TestSamplerAndExport:
    def test_sampler_covers_the_run(self, traced):
        result, telemetry = traced
        samples = telemetry.sampler.samples
        assert samples, "sampler recorded nothing"
        assert samples[0]["t"] == 0.0
        assert samples[-1]["t"] >= result.makespan - telemetry.sampler.interval
        names = telemetry.sampler.series_names()
        assert {"queue_depth", "load", "kv_frac", "hit_rate"} <= set(names)
        assert "shard0.load" in names and "shard1.load" in names

    def test_chrome_export_of_real_run_validates(self, traced, tmp_path):
        _, telemetry = traced
        document = telemetry.trace.write_chrome(tmp_path / "trace.json")
        assert validate_chrome_trace(document) == []

    def test_summary_rollup(self, traced):
        result, telemetry = traced
        summary = telemetry.summary()
        assert summary["requests_traced"] == result.report.num_completed
        assert summary["samples"] == len(telemetry.sampler.samples)
        lanes = {row["lane"] for row in summary["lanes"]}
        assert "shard0/weight" in lanes and "router" in lanes
