"""TraceRecorder invariants and Chrome trace-event export/validation."""

import pytest

from repro.obs import (
    REQUEST_PHASES,
    TraceRecorder,
    summarize_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.trace import iter_lane_spans
from repro.utils.errors import SimulationError


def small_trace() -> TraceRecorder:
    trace = TraceRecorder()
    trace.add_span("shard0/decode", "decode", 0.0, 1.0, num_requests=2)
    trace.add_span("shard0/decode", "mixed", 1.0, 0.5)
    trace.add_span("shard0/prefill", "prefill", 0.25, 0.5)
    trace.add_instant("router", "route", 0.1, request_id=7)
    trace.add_request_span(7, "queue", 0.1, 0.25)
    trace.add_request_span(7, "prefill", 0.25, 0.75)
    trace.add_request_span(7, "decode", 0.75, 1.5, tokens=3)
    trace.add_counter("queue_depth", 0.5, {"queue_depth": 2.0})
    return trace


class TestRecorder:
    def test_phases_constant(self):
        assert REQUEST_PHASES == ("queue", "prefill", "decode")

    def test_lane_queries(self):
        trace = small_trace()
        assert trace.lanes() == ["router", "shard0/decode", "shard0/prefill"]
        assert [s.name for s in trace.spans_on("shard0/decode")] == [
            "decode",
            "mixed",
        ]
        assert trace.lane_busy("shard0/decode") == pytest.approx(1.5)
        assert trace.makespan == pytest.approx(1.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            TraceRecorder().add_span("lane", "bad", 0.0, -0.1)
        with pytest.raises(SimulationError):
            TraceRecorder().add_request_span(1, "queue", 1.0, 0.5)

    def test_verify_lanes_catches_overlap(self):
        trace = small_trace()
        trace.verify_lanes()  # the base trace is clean
        trace.add_span("shard0/decode", "rogue", 0.5, 1.0)
        with pytest.raises(SimulationError, match="overlapping spans"):
            trace.verify_lanes()

    def test_verify_request_chains_catches_gap(self):
        trace = small_trace()
        trace.verify_request_chains()
        trace.add_request_span(8, "queue", 0.0, 1.0)
        trace.add_request_span(8, "prefill", 1.5, 2.0)  # 0.5 s gap
        with pytest.raises(SimulationError, match="request 8"):
            trace.verify_request_chains()


class TestChromeExport:
    def test_export_validates_and_round_trips(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.json"
        document = trace.write_chrome(path)
        assert validate_chrome_trace(document) == []

        import json

        reloaded = json.loads(path.read_text())
        assert validate_chrome_trace(reloaded) == []
        spans = list(iter_lane_spans(reloaded))
        decode = [s for s in spans if s[0] == "shard0/decode"]
        assert sum(d for _, _, d in decode) == pytest.approx(1.5)

    def test_summary_rollups(self):
        summary = summarize_chrome_trace(small_trace().to_chrome())
        lanes = {row["lane"]: row for row in summary["lanes"]}
        assert lanes["shard0/decode"]["spans"] == 2
        assert lanes["shard0/decode"]["busy_s"] == pytest.approx(1.5)
        phases = {row["phase"]: row for row in summary["requests"]}
        assert phases["decode"]["count"] == 1
        assert phases["decode"]["total_s"] == pytest.approx(0.75)
        assert summary["makespan_s"] == pytest.approx(1.5)

    def test_validator_flags_broken_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "Z", "name": "x", "ts": 0}]}
        ) != []
        # X without dur, event without ts, unbalanced async pair.
        errors = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "name": "x", "ts": 0},
                    {"ph": "i", "name": "y"},
                    {"ph": "b", "name": "p", "cat": "request", "id": 1, "ts": 0},
                ]
            }
        )
        assert len(errors) == 3
