"""The ``repro-trace`` CLI: exit codes, validation and summaries."""

import json

import pytest

from repro.obs import TraceRecorder
from repro.obs.trace_cli import main


@pytest.fixture()
def trace_path(tmp_path):
    trace = TraceRecorder()
    trace.add_span("engine/decode", "decode", 0.0, 2.0)
    trace.add_request_span(1, "queue", 0.0, 0.5)
    trace.add_request_span(1, "prefill", 0.5, 1.0)
    trace.add_request_span(1, "decode", 1.0, 2.0)
    path = tmp_path / "trace.json"
    trace.write_chrome(path)
    return path


class TestExitCodes:
    def test_valid_trace_summarises(self, trace_path, capsys):
        assert main([str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "engine/decode" in out
        assert "makespan" in out

    def test_validate_only(self, trace_path, capsys):
        assert main([str(trace_path), "--validate"]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_json_summary(self, trace_path, capsys):
        assert main([str(trace_path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["makespan_s"] == pytest.approx(2.0)
        assert summary["lanes"][0]["lane"] == "engine/decode"

    def test_invalid_trace_exits_1(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
        assert main([str(path), "--validate"]) == 1
        assert "invalid" in capsys.readouterr().err

    def test_unreadable_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main([str(missing)]) == 2
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        assert main([str(garbled)]) == 2
