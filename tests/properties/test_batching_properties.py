"""Property-based tests for request batching (Algorithm 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.batching import batch_requests, pad_requests
from repro.workloads.request import Request

request_lists = st.lists(
    st.integers(min_value=1, max_value=2048), min_size=0, max_size=60
).map(lambda lengths: [Request(input_len=length, generation_len=16) for length in lengths])


@given(
    requests=request_lists,
    num_micro_batches=st.integers(min_value=1, max_value=8),
    micro_batch_size=st.integers(min_value=1, max_value=16),
    cache_size=st.integers(min_value=64, max_value=100_000),
)
@settings(max_examples=60, deadline=None)
def test_no_request_lost_duplicated_or_invented(
    requests, num_micro_batches, micro_batch_size, cache_size
):
    result = batch_requests(
        requests,
        num_micro_batches=num_micro_batches,
        micro_batch_size=micro_batch_size,
        generation_len=16,
        cache_size_tokens=cache_size,
    )
    placed = [r.request_id for mb in result.micro_batches for r in mb]
    aborted = [r.request_id for r in result.aborted]
    assert sorted(placed + aborted) == sorted(r.request_id for r in requests)
    assert len(set(placed)) == len(placed)


@given(
    requests=request_lists,
    num_micro_batches=st.integers(min_value=1, max_value=8),
    micro_batch_size=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=60, deadline=None)
def test_micro_batch_size_limit_respected(requests, num_micro_batches, micro_batch_size):
    result = batch_requests(
        requests,
        num_micro_batches=num_micro_batches,
        micro_batch_size=micro_batch_size,
        generation_len=16,
    )
    assert all(mb.size <= micro_batch_size for mb in result.micro_batches)
    # Without a cache limit nothing is aborted.
    assert not result.aborted or len(result.micro_batches) >= num_micro_batches


@given(
    requests=request_lists,
    num_micro_batches=st.integers(min_value=1, max_value=6),
    micro_batch_size=st.integers(min_value=1, max_value=12),
    cache_size=st.integers(min_value=32, max_value=50_000),
)
@settings(max_examples=60, deadline=None)
def test_cache_budget_respected_at_end_of_generation(
    requests, num_micro_batches, micro_batch_size, cache_size
):
    generation_len = 16
    result = batch_requests(
        requests,
        num_micro_batches=num_micro_batches,
        micro_batch_size=micro_batch_size,
        generation_len=generation_len,
        cache_size_tokens=cache_size,
    )
    for micro_batch in result.micro_batches:
        final_tokens = sum(r.input_len + generation_len for r in micro_batch)
        assert final_tokens <= max(cache_size, micro_batch.max_input_len + generation_len)


@given(requests=request_lists, pad_to=st.integers(min_value=1, max_value=4096))
@settings(max_examples=60, deadline=None)
def test_padding_never_shrinks_and_reaches_target(requests, pad_to):
    padded = pad_requests(requests, pad_to=pad_to)
    assert len(padded) == len(requests)
    for before, after in zip(requests, padded):
        assert after.effective_input_len >= before.input_len
        assert after.effective_input_len >= min(pad_to, before.input_len)
        assert after.input_len == before.input_len
