"""Property-based invariants of the shared KV block store.

Driven as a random interleaving of sequence registrations (with randomly
overlapping token prefixes) and releases, the store must maintain, at every
step:

* no refcount is ever negative (violations raise inside the store);
* pool bytes in use equal the byte sum over *unique* resident blocks — a
  block shared by many sequences is charged exactly once;
* eviction only ever reclaims refcount-zero blocks: every block referenced
  by a live sequence stays resident until that sequence releases it;
* with no prefix overlap at all, pool usage matches the per-sequence
  regime's accounting block for block.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import get_model
from repro.models.memory import kv_cache_bytes_per_token_per_layer
from repro.runtime.kv_cache import KVCacheManager
from repro.runtime.memory_manager import MemoryPool

MODEL = get_model("tiny-moe")
BLOCK_TOKENS = 8
BLOCK_BYTES = (
    BLOCK_TOKENS * kv_cache_bytes_per_token_per_layer(MODEL) * MODEL.num_layers
)
CAPACITY_BLOCKS = 48

#: One op: (prefix_family, prefix_blocks, total_blocks). Sequences of the
#: same family share their leading tokens, so prefix_blocks of overlap is
#: available for reuse whenever an earlier family member is resident.
OPS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=3),
    ),
    min_size=1,
    max_size=24,
)


def make_manager() -> KVCacheManager:
    pool = MemoryPool("cpu", CAPACITY_BLOCKS * BLOCK_BYTES, BLOCK_BYTES)
    return KVCacheManager(
        MODEL, pool, block_tokens=BLOCK_TOKENS, prefix_cache=True
    )


def family_tokens(family: int, num_tokens: int) -> tuple[int, ...]:
    base = family * 1_000_000
    return tuple(base + i for i in range(num_tokens))


def check_invariants(manager: KVCacheManager) -> None:
    store = manager.block_store
    # Refcounts are never negative, and every live sequence's blocks reside.
    for block in store.blocks.values():
        assert block.ref_count >= 0
    for cache in manager.sequences.values():
        for block_id in cache.block_table.block_ids:
            assert block_id in store.blocks
            assert store.blocks[block_id].ref_count >= 1
    # Unique-block byte accounting matches the pool exactly.
    cpu_resident, _ = store.bytes_in_use()
    assert cpu_resident == manager.cpu_pool.used_bytes
    # No sequence double-counts a sharer: summing per-sequence would
    # overcount, summing unique blocks must not.
    unique_blocks = {
        block_id
        for cache in manager.sequences.values()
        for block_id in cache.block_table.block_ids
    }
    live_cpu, _ = store.bytes_in_use(live_only=True)
    assert live_cpu == sum(
        store.blocks[block_id].cpu_bytes for block_id in unique_blocks
    )


@given(ops=OPS, data=st.data())
@settings(max_examples=60, deadline=None)
def test_store_invariants_hold_under_random_interleavings(ops, data):
    manager = make_manager()
    live: list[int] = []
    for seq_id, (family, prefix_blocks, extra_blocks) in enumerate(ops):
        total_tokens = (prefix_blocks + extra_blocks) * BLOCK_TOKENS
        # The prefix is shared within the family; the tail is unique.
        tokens = family_tokens(family, prefix_blocks * BLOCK_TOKENS) + tuple(
            10_000_000 + seq_id * 1000 + i for i in range(extra_blocks * BLOCK_TOKENS)
        )
        if manager.can_admit(total_tokens, 0, token_ids=tokens):
            manager.register_sequence(seq_id, total_tokens, token_ids=tokens)
            live.append(seq_id)
        check_invariants(manager)
        # Randomly retire one live sequence.
        if live and data.draw(st.booleans()):
            victim = live.pop(data.draw(st.integers(0, len(live) - 1)))
            manager.release_sequence(victim)
            check_invariants(manager)
    for seq_id in live:
        manager.release_sequence(seq_id)
    check_invariants(manager)
    assert manager.total_tokens == 0


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=12)
)
@settings(max_examples=40, deadline=None)
def test_zero_overlap_matches_per_sequence_accounting(sizes):
    """Disjoint prompts: shared-store pool usage == per-sequence pool usage."""
    shared = make_manager()
    plain = KVCacheManager(
        MODEL,
        MemoryPool("cpu", CAPACITY_BLOCKS * BLOCK_BYTES, BLOCK_BYTES),
        block_tokens=BLOCK_TOKENS,
    )
    for seq_id, num_tokens in enumerate(sizes):
        tokens = tuple(seq_id * 1_000_000 + i for i in range(num_tokens))
        if not (
            shared.can_admit(num_tokens, 0, token_ids=tokens)
            and plain.can_admit(num_tokens, 0)
        ):
            continue
        shared.register_sequence(seq_id, num_tokens, token_ids=tokens)
        plain.register_sequence(seq_id, num_tokens)
        assert shared.cpu_pool.used_pages == plain.cpu_pool.used_pages
        assert shared.cpu_bytes == plain.cpu_bytes
    # Releases converge too: live bytes drop to zero in both regimes.
    shared.release_all()
    plain.release_all()
    assert shared.cpu_bytes == plain.cpu_bytes == 0.0
