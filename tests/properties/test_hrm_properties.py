"""Property-based tests for the roofline / HRM algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hrm import HierarchicalRoofline, MemoryLevel
from repro.core.roofline import RooflineModel

positive = st.floats(min_value=1e6, max_value=1e15, allow_nan=False, allow_infinity=False)
intensity = st.floats(min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False)


@given(peak_flops=positive, peak_bandwidth=positive, value=intensity)
@settings(max_examples=100, deadline=None)
def test_roofline_attainable_never_exceeds_roofs(peak_flops, peak_bandwidth, value):
    roofline = RooflineModel(peak_flops=peak_flops, peak_bandwidth=peak_bandwidth)
    attainable = roofline.attainable(value)
    assert attainable <= peak_flops * (1 + 1e-12)
    assert attainable <= peak_bandwidth * value * (1 + 1e-12)


@given(peak_flops=positive, peak_bandwidth=positive, a=intensity, b=intensity)
@settings(max_examples=100, deadline=None)
def test_roofline_attainable_monotone_in_intensity(peak_flops, peak_bandwidth, a, b):
    roofline = RooflineModel(peak_flops=peak_flops, peak_bandwidth=peak_bandwidth)
    low, high = min(a, b), max(a, b)
    assert roofline.attainable(low) <= roofline.attainable(high) * (1 + 1e-12)


@st.composite
def hierarchies(draw):
    gpu_flops = draw(st.floats(min_value=1e12, max_value=1e15))
    cpu_flops = draw(st.floats(min_value=1e9, max_value=gpu_flops))
    gpu_bandwidth = draw(st.floats(min_value=1e11, max_value=1e13))
    cpu_bandwidth = draw(st.floats(min_value=1e9, max_value=gpu_bandwidth))
    cross = draw(st.floats(min_value=1e8, max_value=cpu_bandwidth))
    gpu = MemoryLevel("gpu", gpu_flops, gpu_bandwidth, 1e10)
    cpu = MemoryLevel("cpu", cpu_flops, cpu_bandwidth, 1e11)
    return HierarchicalRoofline(gpu=gpu, cpu=cpu, cross_bandwidth=cross)


@given(hrm=hierarchies(), gpu_intensity=intensity, cpu_intensity=intensity)
@settings(max_examples=100, deadline=None)
def test_hrm_attainable_is_min_of_roofs(hrm, gpu_intensity, cpu_intensity):
    roofs = hrm.roofs_on_gpu(gpu_intensity, cpu_intensity)
    assert roofs.attainable <= roofs.compute_roof
    assert roofs.attainable <= roofs.local_memory_roof
    assert roofs.attainable <= roofs.cross_memory_roof
    assert roofs.bottleneck in ("compute", "local_memory", "interconnect")


@given(hrm=hierarchies(), gpu_intensity=intensity, cpu_intensity=intensity)
@settings(max_examples=100, deadline=None)
def test_hrm_gpu_execution_never_beats_unconstrained_gpu(hrm, gpu_intensity, cpu_intensity):
    """Adding the interconnect roof can only lower attainable performance."""
    constrained = hrm.attainable_on_gpu(gpu_intensity, cpu_intensity)
    unconstrained = hrm.gpu.roofline.attainable(gpu_intensity)
    assert constrained <= unconstrained * (1 + 1e-12)


@given(hrm=hierarchies(), cpu_intensity=intensity)
@settings(max_examples=100, deadline=None)
def test_hrm_turning_points_ordering(hrm, cpu_intensity):
    """P1 never exceeds P2 for the same cross-level intensity (footnote 1:
    the lower level is no faster than the upper level)."""
    p1 = hrm.p1(cpu_intensity)
    p2 = hrm.p2(cpu_intensity)
    assert p1 <= p2 * (1 + 1e-9)


@given(hrm=hierarchies(), gpu_intensity=intensity)
@settings(max_examples=100, deadline=None)
def test_balance_point_equalises_the_two_memory_roofs(hrm, gpu_intensity):
    balance = hrm.balance_point(gpu_intensity)
    local = hrm.gpu.peak_bandwidth * gpu_intensity
    cross = hrm.cross_bandwidth * balance
    assert abs(local - cross) <= 1e-6 * max(local, cross)
