"""Property-based tests for the memory model and policy invariants."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.memory_model import MemoryModel
from repro.core.policy import Policy
from repro.hardware import get_hardware
from repro.models import get_model
from repro.workloads import mtbench

MODEL = get_model("mixtral-8x7b")
HARDWARE = get_hardware("1xT4")
WORKLOAD = mtbench(generation_len=64)
MEMORY = MemoryModel(model=MODEL, hardware=HARDWARE, workload=WORKLOAD, padded=True)


@st.composite
def policies(draw):
    micro_batch = draw(st.integers(min_value=1, max_value=256))
    multiplier = draw(st.integers(min_value=1, max_value=64))
    gpu_attention = draw(st.booleans())
    kv_ratio = draw(st.floats(min_value=0.0, max_value=1.0)) if gpu_attention else 0.0
    return Policy(
        batch_size=micro_batch * multiplier,
        micro_batch_size=micro_batch,
        attention_on_gpu=gpu_attention,
        ffn_on_gpu=True,
        weights_gpu_ratio=draw(st.floats(min_value=0.0, max_value=1.0)),
        kv_cache_gpu_ratio=kv_ratio,
    )


@given(policy=policies())
@settings(max_examples=80, deadline=None)
def test_footprints_are_non_negative_and_additive(policy):
    usage = MEMORY.usage(policy)
    for footprint in (usage.gpu, usage.cpu):
        assert footprint.weights >= 0
        assert footprint.kv_cache >= 0
        assert footprint.total >= footprint.weights


@given(policy=policies())
@settings(max_examples=80, deadline=None)
def test_total_kv_cache_split_is_conserved(policy):
    usage = MEMORY.usage(policy)
    total_kv = MEMORY.kv_cache_total_bytes(policy)
    assert abs((usage.gpu.kv_cache + usage.cpu.kv_cache) - total_kv) <= 1e-6 * total_kv


@given(policy=policies())
@settings(max_examples=80, deadline=None)
def test_gpu_footprint_monotone_in_weights_ratio(policy):
    if policy.weights_gpu_ratio > 0.9:
        smaller = policy.with_weights_gpu_ratio(policy.weights_gpu_ratio - 0.1)
        larger = policy
    else:
        smaller = policy
        larger = policy.with_weights_gpu_ratio(policy.weights_gpu_ratio + 0.1)
    assert MEMORY.gpu_usage(larger).weights >= MEMORY.gpu_usage(smaller).weights
    assert MEMORY.cpu_usage(larger).weights <= MEMORY.cpu_usage(smaller).weights


@given(policy=policies(), extra=st.integers(min_value=1, max_value=512))
@settings(max_examples=80, deadline=None)
def test_cpu_footprint_monotone_in_batch_size(policy, extra):
    bigger = policy.with_batch_size(policy.batch_size + extra)
    assert MEMORY.cpu_usage(bigger).total >= MEMORY.cpu_usage(policy).total


@given(policy=policies())
@settings(max_examples=80, deadline=None)
def test_max_weights_ratio_is_feasible_on_gpu(policy):
    ratio = MEMORY.max_weights_gpu_ratio(policy)
    assert 0.0 <= ratio <= 1.0
    # The bound is only meaningful when the policy fits at all with no
    # resident weights (otherwise activations/workspace alone overflow).
    assume(
        MEMORY.gpu_usage(policy.with_weights_gpu_ratio(0.0)).total
        <= MEMORY.usable_gpu_memory
    )
    bounded = policy.with_weights_gpu_ratio(ratio)
    assert MEMORY.gpu_usage(bounded).total <= MEMORY.usable_gpu_memory * (1 + 1e-9)


@given(policy=policies())
@settings(max_examples=80, deadline=None)
def test_num_micro_batches_covers_batch(policy):
    assert policy.num_micro_batches * policy.micro_batch_size >= policy.batch_size
    assert (policy.num_micro_batches - 1) * policy.micro_batch_size < policy.batch_size
