"""Property-based tests for the functional engine's numerical kernels."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.engine.numerics import (
    gqa_attention_decode,
    rms_norm,
    softmax,
    top_k_routing,
)

finite_floats = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


@given(
    logits=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 8), st.integers(2, 32)),
        elements=finite_floats,
    )
)
@settings(max_examples=80, deadline=None)
def test_softmax_is_a_probability_distribution(logits):
    probs = softmax(logits)
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=-1), 1.0)


@given(
    x=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 6), st.integers(2, 64)),
        elements=finite_floats,
    ),
    scale=st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=80, deadline=None)
def test_rms_norm_is_scale_invariant(x, scale):
    """RMSNorm output is invariant to positive rescaling of its input.

    The input is shifted away from zero so the numerical-stability epsilon
    inside the norm stays negligible relative to the signal.
    """
    shifted = x + 1.0
    rms = np.sqrt(np.mean(np.square(shifted), axis=-1))
    # The epsilon perturbs the norm by ~eps / (2 * rms^2); both the base
    # and the scaled input's RMS must stay large enough that the relative
    # error sits well inside the 1e-3 tolerance (scale >= 0.1, so bounding
    # scale * rms bounds both).
    assume(np.all(rms > 1e-2))
    assume(np.all(scale * rms > 0.05))
    weight = np.ones(x.shape[-1])
    base = rms_norm(shifted, weight)
    scaled = rms_norm(shifted * scale, weight)
    assert np.allclose(base, scaled, rtol=1e-3, atol=1e-3)


@given(
    logits=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 16), st.integers(2, 16)),
        elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
    ),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_top_k_routing_weights_normalised_and_indices_valid(logits, data):
    top_k = data.draw(st.integers(min_value=1, max_value=logits.shape[1]))
    indices, weights = top_k_routing(logits, top_k)
    assert indices.shape == (logits.shape[0], top_k)
    assert np.all(indices >= 0) and np.all(indices < logits.shape[1])
    assert np.allclose(weights.sum(axis=-1), 1.0)
    # Selected logits are at least as large as every non-selected logit.
    for row in range(logits.shape[0]):
        selected = set(indices[row].tolist())
        others = [v for i, v in enumerate(logits[row]) if i not in selected]
        if others:
            assert logits[row, indices[row]].min() >= max(others) - 1e-9


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    batch=st.integers(min_value=1, max_value=4),
    context=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=60, deadline=None)
def test_decode_attention_output_is_convex_combination_of_values(seed, batch, context):
    """Attention outputs lie within the per-head min/max of the cached values."""
    rng = np.random.default_rng(seed)
    n_q, n_kv, dim = 4, 2, 8
    q = rng.normal(size=(batch, n_q, dim))
    k = rng.normal(size=(batch, context, n_kv, dim))
    v = rng.normal(size=(batch, context, n_kv, dim))
    out = gqa_attention_decode(q, k, v, context_lens=np.full(batch, context))
    group = n_q // n_kv
    v_full = np.repeat(v, group, axis=-2)  # (batch, ctx, n_q, dim)
    upper = v_full.max(axis=1)
    lower = v_full.min(axis=1)
    assert np.all(out <= upper + 1e-9)
    assert np.all(out >= lower - 1e-9)
