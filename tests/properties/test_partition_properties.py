"""Partition invariants: shard quantities must sum back to the whole model.

The cluster layer's accounting promise is conservation: splitting a model
across N devices relocates bytes and FLOPs but never creates or destroys
them.  These property tests pin that invariant across models, shard counts
and tp/ep factorings, plus the degenerate guarantee that a 1-shard plan
changes nothing at all.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, PartitionPlan
from repro.core.memory_model import MemoryModel, PartitionedMemoryModel
from repro.core.performance_model import (
    PartitionedPerformanceModel,
    PerformanceModel,
)
from repro.core.policy import Policy
from repro.hardware import get_hardware
from repro.models import get_model
from repro.models.memory import (
    attention_weight_bytes,
    embedding_weight_bytes,
    ffn_weight_bytes,
    kv_cache_bytes_per_token,
    model_weight_bytes,
)
from repro.workloads import mtbench

MODELS = ("mixtral-8x7b", "mixtral-8x22b", "dbrx")
#: Power-of-two shard counts keep byte division exact in floating point.
SHARD_COUNTS = (1, 2, 4, 8)


def make_plan(num_shards: int, tp_size: int | None = None) -> PartitionPlan:
    from dataclasses import replace

    node = get_hardware("1xT4")
    aggregate = replace(node, tp_size=num_shards, name=f"{num_shards}xT4")
    cluster = ClusterSpec.from_hardware(aggregate)
    tp = tp_size if tp_size is not None else num_shards
    return PartitionPlan(cluster=cluster, tp_size=tp, ep_size=num_shards // tp)


@settings(max_examples=40, deadline=None)
@given(
    model_name=st.sampled_from(MODELS),
    num_shards=st.sampled_from(SHARD_COUNTS),
)
def test_shard_weight_and_kv_bytes_sum_to_totals(model_name, num_shards):
    model = get_model(model_name)
    plan = make_plan(num_shards)
    assert plan.shard_weight_bytes(model) * num_shards == pytest.approx(
        model_weight_bytes(model), rel=1e-12
    )
    assert plan.shard_kv_bytes_per_token(model) * num_shards == pytest.approx(
        kv_cache_bytes_per_token(model), rel=1e-12
    )
    assert plan.shard_attention_weight_bytes(model) * num_shards == pytest.approx(
        attention_weight_bytes(model), rel=1e-12
    )
    assert plan.shard_ffn_weight_bytes(model) * num_shards == pytest.approx(
        ffn_weight_bytes(model), rel=1e-12
    )
    assert plan.shard_embedding_weight_bytes(model) * num_shards == pytest.approx(
        embedding_weight_bytes(model), rel=1e-12
    )


@settings(max_examples=20, deadline=None)
@given(
    model_name=st.sampled_from(MODELS),
    tp_size=st.sampled_from((1, 2, 4)),
)
def test_tp_ep_factoring_does_not_change_shard_bytes(model_name, tp_size):
    """Byte conservation is independent of the tp/ep split of the devices."""
    model = get_model(model_name)
    num_shards = 4
    plan = make_plan(num_shards, tp_size=tp_size)
    pure_tp = make_plan(num_shards)
    assert plan.shard_weight_bytes(model) == pure_tp.shard_weight_bytes(model)
    assert plan.shard_kv_bytes_per_token(model) == pure_tp.shard_kv_bytes_per_token(
        model
    )


@settings(max_examples=20, deadline=None)
@given(
    model_name=st.sampled_from(MODELS),
    batch_size=st.integers(min_value=1, max_value=128),
)
def test_one_shard_partitioned_models_match_base(model_name, batch_size):
    """A 1-shard plan reproduces the unpartitioned models exactly."""
    model = get_model(model_name)
    node = get_hardware("1xT4")
    plan = PartitionPlan(cluster=ClusterSpec.single(node), tp_size=1)
    workload = mtbench(generation_len=16, num_requests=batch_size)
    policy = Policy(batch_size=batch_size, micro_batch_size=min(batch_size, 8))

    base_memory = MemoryModel(model=model, hardware=node, workload=workload)
    part_memory = PartitionedMemoryModel(
        model=model, hardware=node, workload=workload, plan=plan
    )
    assert part_memory.usable_gpu_memory == base_memory.usable_gpu_memory
    assert part_memory.gpu_usage(policy) == base_memory.gpu_usage(policy)
    assert part_memory.cpu_usage(policy) == base_memory.cpu_usage(policy)

    base_perf = PerformanceModel(model=model, hardware=node, workload=workload)
    part_perf = PartitionedPerformanceModel(
        model=model, hardware=node, workload=workload, plan=plan
    )
    context = workload.avg_prompt_len + 8
    assert part_perf.decode_step_latency(policy, context) == base_perf.decode_step_latency(
        policy, context
    )
    assert part_perf.prefill_time(policy) == base_perf.prefill_time(policy)


@settings(max_examples=20, deadline=None)
@given(
    model_name=st.sampled_from(MODELS),
    num_shards=st.sampled_from((2, 4)),
    tokens=st.integers(min_value=1, max_value=4096),
)
def test_collective_traffic_scales_linearly_in_tokens(
    model_name, num_shards, tokens
):
    model = get_model(model_name)
    plan = make_plan(num_shards)
    policy = Policy(batch_size=max(1, tokens), micro_batch_size=1)
    one = plan.layer_collective_traffic(model, policy, 1)
    many = plan.layer_collective_traffic(model, policy, tokens)
    assert many.bytes_on_link == pytest.approx(
        one.bytes_on_link * tokens, rel=1e-9
    )
    assert many.launches == one.launches