"""Property-based tests for the online serving subsystem.

The central property: SLO-goodput *fraction* is monotonically
non-increasing in the offered arrival rate.  Scaling the arrival rate up
(same request bodies, compressed timestamps) can only increase queueing, so
the fraction of requests served within the (queueing-bound) SLO can only
fall.  The SLO used here keeps TPOT loose on purpose: TPOT under FCFS is
not monotone in load — low-rate trickles interrupt a lone decoder with
unamortised single-request prefills, a real continuous-batching artefact —
while the TTFT/queueing component is.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving import (
    GammaProcess,
    PoissonProcess,
    ServingSystem,
    SLO,
    default_slo,
)
from repro.systems import MoELightningSystem
from repro.workloads import mtbench

WORKLOAD = mtbench(generation_len=16, num_requests=64)
BACKEND = MoELightningSystem(get_model("mixtral-8x7b"), get_hardware("1xT4"))
POLICY = BACKEND.select_policy(WORKLOAD)
_BASE_SLO = default_slo(BACKEND, WORKLOAD, POLICY)
#: Queueing-bound SLO: tight TTFT, TPOT loose enough to never bind.
QUEUEING_SLO = SLO(ttft=_BASE_SLO.ttft, tpot=_BASE_SLO.tpot * 50)

RATES = (0.05, 0.2, 0.8, 3.2, 12.8)


def goodput_fraction(rate: float, seed: int, **kwargs) -> float:
    serving = ServingSystem(
        BACKEND, WORKLOAD, policy=POLICY, slo=QUEUEING_SLO, **kwargs
    )
    result = serving.run(PoissonProcess(rate), count=32, seed=seed)
    return result.report.goodput_fraction


@given(seed=st.integers(min_value=0, max_value=255))
@settings(max_examples=8, deadline=None, derandomize=True)
def test_goodput_non_increasing_in_arrival_rate(seed):
    fractions = [goodput_fraction(rate, seed) for rate in RATES]
    for lighter, heavier in zip(fractions, fractions[1:]):
        assert heavier <= lighter + 1e-9


@given(seed=st.integers(min_value=0, max_value=255))
@settings(max_examples=4, deadline=None, derandomize=True)
def test_goodput_non_increasing_with_bounded_queue(seed):
    """Monotonicity also holds when overload is shed at a bounded queue."""
    fractions = [
        goodput_fraction(rate, seed, max_queue_depth=8) for rate in RATES
    ]
    for lighter, heavier in zip(fractions, fractions[1:]):
        assert heavier <= lighter + 1e-9


@given(
    seed=st.integers(min_value=0, max_value=255),
    rate=st.floats(min_value=0.05, max_value=20.0),
    depth=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=12, deadline=None, derandomize=True)
def test_every_offered_request_is_resolved(seed, rate, depth):
    """Conservation: offered = completed + rejected, whatever the load."""
    serving = ServingSystem(
        BACKEND, WORKLOAD, policy=POLICY, slo=QUEUEING_SLO, max_queue_depth=depth
    )
    result = serving.run(PoissonProcess(rate), count=24, seed=seed)
    report = result.report
    assert report.num_completed + report.num_rejected == report.num_offered
    assert report.num_offered == 24


@given(
    seed=st.integers(min_value=0, max_value=255),
    rate=st.floats(min_value=0.01, max_value=100.0),
    cv=st.floats(min_value=0.25, max_value=8.0),
)
@settings(max_examples=20, deadline=None, derandomize=True)
def test_arrival_streams_are_sorted_and_non_negative(seed, rate, cv):
    stream = GammaProcess(rate, cv=cv).generate(WORKLOAD, count=32, seed=seed)
    times = [timed.arrival_time for timed in stream]
    assert all(t >= 0 for t in times)
    assert times == sorted(times)
