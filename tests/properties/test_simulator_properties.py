"""Property-based tests for the discrete-event simulator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.resources import ResourceKind
from repro.runtime.simulator import Simulator
from repro.runtime.tasks import TaskGraph, TaskKind

RESOURCES = list(ResourceKind)


@st.composite
def task_graphs(draw):
    """Random DAGs with forward-only dependencies."""
    count = draw(st.integers(min_value=1, max_value=40))
    graph = TaskGraph()
    for index in range(count):
        resource = draw(st.sampled_from(RESOURCES))
        duration = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        num_deps = draw(st.integers(min_value=0, max_value=min(3, index)))
        deps = draw(
            st.lists(
                st.integers(min_value=0, max_value=index - 1),
                min_size=num_deps,
                max_size=num_deps,
                unique=True,
            )
        ) if index else []
        graph.add(TaskKind.OTHER, resource, duration, deps=deps)
    return graph


@given(graph=task_graphs())
@settings(max_examples=60, deadline=None)
def test_all_tasks_complete_exactly_once(graph):
    result = Simulator().run(graph)
    assert len(result.trace) == len(graph)
    assert set(result.completion_times) == {task.task_id for task in graph}


@given(graph=task_graphs())
@settings(max_examples=60, deadline=None)
def test_causality_dependencies_finish_before_dependents_start(graph):
    result = Simulator().run(graph)
    start = {event.task_id: event.start for event in result.trace}
    end = {event.task_id: event.end for event in result.trace}
    for task in graph:
        for dep in task.deps:
            assert end[dep] <= start[task.task_id] + 1e-9


@given(graph=task_graphs())
@settings(max_examples=60, deadline=None)
def test_exclusive_resources_never_overlap(graph):
    result = Simulator().run(graph)
    result.trace.verify_exclusive()


@given(graph=task_graphs())
@settings(max_examples=60, deadline=None)
def test_makespan_bounds(graph):
    """Makespan is at least the busiest channel's work and the longest chain,
    and at most the serial sum of all durations."""
    result = Simulator().run(graph)
    total = sum(task.duration for task in graph)
    busiest = max(graph.total_work(resource) for resource in RESOURCES)
    assert result.makespan <= total + 1e-9
    assert result.makespan >= busiest - 1e-9
    # Longest dependency chain lower bound.
    chain: dict[int, float] = {}
    for task in graph:
        chain[task.task_id] = task.duration + max(
            (chain[dep] for dep in task.deps), default=0.0
        )
    assert result.makespan >= max(chain.values()) - 1e-9


@given(graph=task_graphs())
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic(graph):
    first = Simulator().run(graph)
    second = Simulator().run(graph)
    assert first.makespan == second.makespan
    assert first.completion_times == second.completion_times
