"""Shared block store: hashing, sharing, refcounts, COW, LRU eviction."""

import pytest

from repro.runtime.block_store import SharedBlockStore, chain_block_hashes
from repro.runtime.memory_manager import MemoryPool
from repro.utils.errors import MemoryManagerError

BLOCK_TOKENS = 4
BLOCK_BYTES = 1024.0


def make_store(num_blocks=8, gpu_ratio=0.0, gpu_blocks=8):
    # Pool pages hold exactly each pool's share of one block, as the
    # serving admission controller sizes them.
    cpu_share = BLOCK_BYTES * (1 - gpu_ratio)
    cpu_pool = MemoryPool("cpu", num_blocks * cpu_share, cpu_share)
    gpu_pool = None
    if gpu_ratio > 0:
        gpu_pool = MemoryPool(
            "gpu", gpu_blocks * BLOCK_BYTES * gpu_ratio, BLOCK_BYTES * gpu_ratio
        )
    return SharedBlockStore(
        cpu_pool=cpu_pool,
        block_bytes=BLOCK_BYTES,
        block_tokens=BLOCK_TOKENS,
        gpu_pool=gpu_pool,
        gpu_ratio=gpu_ratio,
    )


class TestHashing:
    def test_only_full_blocks_hash(self):
        assert chain_block_hashes((1, 2, 3), BLOCK_TOKENS) == []
        assert len(chain_block_hashes((1, 2, 3, 4), BLOCK_TOKENS)) == 1
        assert len(chain_block_hashes(tuple(range(11)), BLOCK_TOKENS)) == 2

    def test_hash_chains_through_earlier_blocks(self):
        a = chain_block_hashes((1, 2, 3, 4, 5, 6, 7, 8), BLOCK_TOKENS)
        b = chain_block_hashes((9, 2, 3, 4, 5, 6, 7, 8), BLOCK_TOKENS)
        # Same second-block tokens, different first block: both hashes differ.
        assert a[0] != b[0]
        assert a[1] != b[1]

    def test_hash_is_deterministic(self):
        tokens = tuple(range(16))
        assert chain_block_hashes(tokens, BLOCK_TOKENS) == chain_block_hashes(
            tokens, BLOCK_TOKENS
        )


class TestSharing:
    def test_match_requires_residency(self):
        store = make_store()
        tokens = (1, 2, 3, 4, 5)
        assert store.match_prefix(tokens) == []
        hashes = chain_block_hashes(tokens, BLOCK_TOKENS)
        block = store.allocate_block(BLOCK_TOKENS, block_hash=hashes[0])
        assert store.match_prefix(tokens) == [block.block_id]

    def test_match_never_covers_whole_prompt(self):
        """Prefill must keep at least one token to compute first logits."""
        store = make_store()
        tokens = (1, 2, 3, 4, 5, 6, 7, 8)
        for h in chain_block_hashes(tokens, BLOCK_TOKENS):
            store.allocate_block(BLOCK_TOKENS, block_hash=h)
        # Both blocks resident, but an 8-token prompt may match only one.
        assert len(store.match_prefix(tokens)) == 1
        assert len(store.match_prefix(tokens + (9,))) == 2

    def test_acquire_shares_without_double_charge(self):
        store = make_store()
        block = store.allocate_block(BLOCK_TOKENS, block_hash=123)
        used_before = store.cpu_pool.used_pages
        store.acquire(block.block_id)
        assert store.blocks[block.block_id].ref_count == 2
        assert store.cpu_pool.used_pages == used_before

    def test_release_retains_hashed_blocks_as_cache(self):
        store = make_store()
        block = store.allocate_block(BLOCK_TOKENS, block_hash=7)
        store.release(block.block_id)
        assert block.block_id in store.blocks  # resident, evictable
        assert store.num_cached_blocks == 1
        assert store.cpu_pool.used_pages == 1

    def test_release_frees_private_blocks_immediately(self):
        store = make_store()
        block = store.allocate_block(BLOCK_TOKENS)
        store.release(block.block_id)
        assert block.block_id not in store.blocks
        assert store.cpu_pool.used_pages == 0

    def test_refcount_underflow_raises(self):
        store = make_store()
        block = store.allocate_block(BLOCK_TOKENS, block_hash=7)
        store.release(block.block_id)
        with pytest.raises(MemoryManagerError):
            store.release(block.block_id)


class TestCopyOnWrite:
    def test_cow_gives_private_copy(self):
        store = make_store()
        shared = store.allocate_block(BLOCK_TOKENS, block_hash=11)
        store.acquire(shared.block_id)  # two sharers
        copy = store.copy_on_write(shared.block_id)
        assert copy.block_id != shared.block_id
        assert copy.ref_count == 1
        assert not copy.is_shareable
        assert store.blocks[shared.block_id].ref_count == 1
        assert store.cow_copies == 1

    def test_append_to_shared_block_rejected(self):
        store = make_store()
        shared = store.allocate_block(BLOCK_TOKENS - 1)
        store.blocks[shared.block_id].ref_count = 2
        with pytest.raises(MemoryManagerError):
            store.append_to_block(shared.block_id, 1)


class TestEviction:
    def test_lru_eviction_frees_oldest_cache(self):
        store = make_store(num_blocks=2)
        first = store.allocate_block(BLOCK_TOKENS, block_hash=1)
        second = store.allocate_block(BLOCK_TOKENS, block_hash=2)
        store.release(first.block_id)
        store.release(second.block_id)
        store.acquire(second.block_id)  # refresh: second is now MRU + pinned
        store.release(second.block_id)
        store.allocate_block(BLOCK_TOKENS)  # needs one page -> evict LRU
        assert first.block_id not in store.blocks
        assert second.block_id in store.blocks
        assert store.evictions == 1

    def test_failed_gpu_allocation_rolls_back_cpu_pages(self):
        """A split-store allocation that dies on the GPU pool leaks nothing."""
        store = make_store(num_blocks=8, gpu_ratio=0.5, gpu_blocks=2)
        store.allocate_block(BLOCK_TOKENS)
        store.allocate_block(BLOCK_TOKENS)  # GPU pool now full, CPU has room
        cpu_used = store.cpu_pool.used_pages
        with pytest.raises(MemoryManagerError):
            store.allocate_block(BLOCK_TOKENS)
        assert store.cpu_pool.used_pages == cpu_used
        assert len(store.blocks) == 2

    def test_eviction_never_removes_referenced_blocks(self):
        store = make_store(num_blocks=2)
        pinned = store.allocate_block(BLOCK_TOKENS, block_hash=1)
        store.allocate_block(BLOCK_TOKENS, block_hash=2)
        # Pool full, nothing evictable: the pool itself must refuse.
        with pytest.raises(MemoryManagerError):
            store.allocate_block(BLOCK_TOKENS)
        assert pinned.block_id in store.blocks

    def test_evicted_blocks_leave_the_hash_index(self):
        store = make_store(num_blocks=1)
        tokens = (1, 2, 3, 4, 5)
        block = store.allocate_block(
            BLOCK_TOKENS, block_hash=chain_block_hashes(tokens, BLOCK_TOKENS)[0]
        )
        store.release(block.block_id)
        assert store.match_prefix(tokens)
        store.allocate_block(BLOCK_TOKENS)  # forces eviction
        assert store.match_prefix(tokens) == []

    def test_can_allocate_counts_evictable_but_not_reserved(self):
        store = make_store(num_blocks=2)
        a = store.allocate_block(BLOCK_TOKENS, block_hash=1)
        b = store.allocate_block(BLOCK_TOKENS, block_hash=2)
        store.release(a.block_id)
        store.release(b.block_id)
        assert store.can_allocate_blocks(2)
        # Reserving one matched block leaves room for only one new block.
        assert store.can_allocate_blocks(1, reserved_block_ids=[a.block_id])
        assert not store.can_allocate_blocks(2, reserved_block_ids=[a.block_id])


class TestAccounting:
    def test_bytes_count_unique_blocks_once(self):
        store = make_store()
        block = store.allocate_block(BLOCK_TOKENS, block_hash=5)
        for _ in range(3):
            store.acquire(block.block_id)
        cpu, gpu = store.bytes_in_use()
        assert cpu == BLOCK_BYTES
        assert gpu == 0.0

    def test_gpu_split_charges_both_pools(self):
        store = make_store(gpu_ratio=0.5)
        store.allocate_block(BLOCK_TOKENS)
        cpu, gpu = store.bytes_in_use()
        assert cpu == pytest.approx(BLOCK_BYTES * 0.5)
        assert gpu == pytest.approx(BLOCK_BYTES * 0.5)

    def test_live_only_excludes_cached(self):
        store = make_store()
        block = store.allocate_block(BLOCK_TOKENS, block_hash=9)
        store.release(block.block_id)
        assert store.bytes_in_use(live_only=True) == (0.0, 0.0)
        assert store.bytes_in_use() == (BLOCK_BYTES, 0.0)


class TestRegisterChain:
    """Bulk chain registration: one call, same store state as the loops."""

    def _chain(self, prompt_tokens):
        return chain_block_hashes(tuple(prompt_tokens), BLOCK_TOKENS)

    def test_fresh_chain_matches_manual_allocation(self):
        tokens = tuple(range(16))
        hashes = self._chain(tokens)
        manual = make_store()
        manual_ids = []
        remaining = 16
        for block_hash in hashes:
            size = min(BLOCK_TOKENS, remaining)
            manual_ids.append(
                manual.allocate_block(size, block_hash=block_hash).block_id
            )
            remaining -= size
        bulk = make_store()
        out: list[int] = []
        cached = bulk.register_chain([], 16, hashes, out)
        assert cached == 0
        assert out == manual_ids
        assert bulk.prefix_index == manual.prefix_index
        assert bulk.bytes_in_use() == manual.bytes_in_use()

    def test_matched_prefix_pinned_not_reallocated(self):
        """The migration-landing path: a fully cached chain re-registers."""
        store = make_store()
        tokens = tuple(range(16))
        hashes = self._chain(tokens)
        out_first: list[int] = []
        store.register_chain([], 16, hashes, out_first)
        for block_id in out_first:
            store.release(block_id)
        assert store.num_cached_blocks == len(out_first)
        out_second: list[int] = []
        cached = store.register_chain(out_first, 16, hashes, out_second)
        assert cached == 16
        assert out_second == out_first  # same resident blocks, re-acquired
        # Re-registration added no blocks and no duplicate hash entries.
        assert store.num_blocks == len(out_first)
        assert len(store.prefix_index) == len(hashes)
        for block_id in out_second:
            assert store.blocks[block_id].ref_count == 1

    def test_failure_releases_every_block_it_took(self):
        store = make_store(num_blocks=2)
        tokens = tuple(range(16))  # needs 4 blocks; only 2 fit
        hashes = self._chain(tokens)
        out: list[int] = []
        with pytest.raises(MemoryManagerError):
            store.register_chain([], 16, hashes, out)
        # The out list is rolled back; the blocks it did commit are fully
        # released — hashed blocks park in the cache (as the unfused
        # release path leaves them), holding no live references.
        assert out == []
        assert store.bytes_in_use(live_only=True) == (0.0, 0.0)
        assert all(b.ref_count == 0 for b in store.blocks.values())


class TestTTLEviction:
    def _cached_block(self, store, block_hash, at_time):
        store.clock_time = at_time
        block = store.allocate_block(BLOCK_TOKENS, block_hash=block_hash)
        store.release(block.block_id)  # shareable -> parks in the cache
        return block

    def test_expires_only_blocks_idle_past_cutoff(self):
        store = make_store()
        old = self._cached_block(store, block_hash=1, at_time=0.0)
        fresh = self._cached_block(store, block_hash=2, at_time=100.0)
        expired = store.expire_idle(cutoff=50.0)
        assert expired == 1
        assert store.ttl_evictions == 1
        assert old.block_id not in store.blocks
        assert fresh.block_id in store.blocks

    def test_referenced_blocks_never_expire(self):
        store = make_store()
        block = store.allocate_block(BLOCK_TOKENS, block_hash=3)
        store.clock_time = 100.0
        assert store.expire_idle(cutoff=200.0) == 0
        assert block.block_id in store.blocks

    def test_reacquired_block_survives_stale_heap_entry(self):
        store = make_store()
        block = self._cached_block(store, block_hash=4, at_time=0.0)
        store.acquire(block.block_id)  # back in use: lazy heap entry stale
        store.clock_time = 100.0
        assert store.expire_idle(cutoff=50.0) == 0
        assert block.block_id in store.blocks
        store.release(block.block_id)  # re-cached at t=100
        assert store.expire_idle(cutoff=50.0) == 0
        assert store.expire_idle(cutoff=150.0) == 1

    def test_expiry_is_lru_ordered_and_stops_at_survivor(self):
        store = make_store()
        blocks = [
            self._cached_block(store, block_hash=10 + i, at_time=10.0 * i)
            for i in range(4)
        ]
        assert store.expire_idle(cutoff=15.0) == 2  # t=0 and t=10 expire
        assert blocks[0].block_id not in store.blocks
        assert blocks[1].block_id not in store.blocks
        assert blocks[2].block_id in store.blocks
        assert blocks[3].block_id in store.blocks
