"""Tests for the task-duration cost model."""

import pytest

from repro.core.policy import Policy
from repro.runtime.costs import TaskCostModel


@pytest.fixture
def costs(mixtral, l4_node):
    return TaskCostModel(model=mixtral, hardware=l4_node)


def test_rates_are_derated(costs, l4_node):
    assert costs.gpu_flops < l4_node.gpu_flops
    assert costs.interconnect_bandwidth < l4_node.cpu_gpu_bandwidth


def test_transfer_time_includes_launch_latency(costs, l4_node):
    assert costs.transfer_time(0) == 0.0
    tiny = costs.transfer_time(1)
    assert tiny >= l4_node.interconnect.latency


def test_cpu_attention_faster_than_kv_transfer(costs):
    """Fig. 9 headline: reading KV from DRAM beats shipping it over PCIe."""
    for context in (128, 512, 2048):
        assert costs.kv_transfer(64, context) > 2 * costs.cpu_attention(64, context)


def test_moe_ffn_latency_flat_in_micro_batch(costs):
    """Fig. 9: the decode FFN is weight-bound, so latency barely moves with μ."""
    small = costs.post_attention(32)
    large = costs.post_attention(256)
    assert large / small < 1.2


def test_cpu_attention_scales_with_context_and_batch(costs):
    assert costs.cpu_attention(64, 2048) > 10 * costs.cpu_attention(64, 128)
    assert costs.cpu_attention(256, 512) > 3 * costs.cpu_attention(32, 512)


def test_cpu_attention_overtakes_ffn_at_large_mu_and_context(costs):
    """Fig. 9: CPU attention eventually becomes the per-layer bottleneck."""
    assert costs.cpu_attention(32, 128) < costs.post_attention(32)
    assert costs.cpu_attention(256, 2048) > costs.post_attention(256)


def test_weight_page_transfer_is_layer_transfer_divided_by_pages(costs):
    policy = Policy(batch_size=256, micro_batch_size=64, weights_gpu_ratio=0.0)
    page = costs.weight_page_transfer(policy)
    layer = costs.weight_layer_transfer(policy)
    assert layer / page == pytest.approx(policy.num_micro_batches, rel=0.05)


def test_streamed_bytes_zero_when_fully_resident(costs):
    policy = Policy(batch_size=64, micro_batch_size=64, weights_gpu_ratio=1.0)
    assert costs.streamed_layer_bytes(policy) == 0.0
    assert costs.weight_layer_transfer(policy) == 0.0


def test_cpu_ffn_slower_than_gpu_ffn(costs):
    assert costs.cpu_ffn(64) > costs.post_attention(64)


def test_qkv_offload_and_hidden_load_are_small(costs):
    policy = Policy(batch_size=256, micro_batch_size=64, weights_gpu_ratio=0.0)
    assert costs.qkv_offload(64) < 0.01 * costs.weight_layer_transfer(policy)
    assert costs.hidden_load(64) < costs.qkv_offload(64)


def test_prefill_layer_time_scales_with_prompt(costs):
    assert costs.prefill_layer(8, 1024) > 3 * costs.prefill_layer(8, 256)


def test_kv_transfer_respects_cpu_ratio(costs):
    full = costs.kv_transfer(64, 512, cpu_ratio=1.0)
    half = costs.kv_transfer(64, 512, cpu_ratio=0.5)
    assert half < full
    assert half > 0.4 * full


def test_sample_cost_scales_with_batch(costs):
    assert costs.sample(2048) > costs.sample(64)
