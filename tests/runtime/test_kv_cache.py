"""Tests for the paged KV-cache manager."""

import pytest

from repro.runtime.kv_cache import KVCacheManager
from repro.runtime.memory_manager import MemoryPool
from repro.utils.errors import MemoryManagerError


@pytest.fixture
def cpu_pool():
    return MemoryPool(name="cpu", capacity_bytes=64e6, page_bytes=64e3)


@pytest.fixture
def gpu_pool():
    return MemoryPool(name="gpu", capacity_bytes=16e6, page_bytes=64e3)


def test_bytes_per_token_matches_memory_model(tiny_model, cpu_pool):
    from repro.models.memory import kv_cache_bytes_per_token

    manager = KVCacheManager(tiny_model, cpu_pool)
    assert manager.bytes_per_token() == pytest.approx(kv_cache_bytes_per_token(tiny_model))


def test_register_and_grow_sequence(tiny_model, cpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool)
    manager.register_sequence(0, prompt_tokens=100)
    assert manager.total_tokens == 100
    manager.append_tokens(0, 10)
    assert manager.total_tokens == 110
    assert manager.cpu_bytes > 0
    assert manager.gpu_bytes == 0


def test_gpu_ratio_splits_allocation(tiny_model, cpu_pool, gpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool, gpu_pool=gpu_pool, gpu_ratio=0.5)
    manager.register_sequence(0, prompt_tokens=200)
    assert manager.gpu_bytes > 0
    assert manager.cpu_bytes > 0
    # Pages are rounded up, so the split is approximate.
    assert manager.gpu_bytes == pytest.approx(manager.cpu_bytes, rel=0.2)


def test_gpu_ratio_without_pool_rejected(tiny_model, cpu_pool):
    with pytest.raises(MemoryManagerError):
        KVCacheManager(tiny_model, cpu_pool, gpu_ratio=0.5)


def test_duplicate_sequence_rejected(tiny_model, cpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool)
    manager.register_sequence(0, prompt_tokens=10)
    with pytest.raises(MemoryManagerError):
        manager.register_sequence(0, prompt_tokens=10)


def test_release_sequence_frees_pool(tiny_model, cpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool)
    manager.register_sequence(0, prompt_tokens=500)
    used = cpu_pool.used_pages
    assert used > 0
    manager.release_sequence(0)
    assert cpu_pool.used_pages == 0
    with pytest.raises(MemoryManagerError):
        manager.release_sequence(0)


def test_release_all(tiny_model, cpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool)
    for sequence_id in range(5):
        manager.register_sequence(sequence_id, prompt_tokens=50)
    manager.release_all()
    assert manager.total_tokens == 0
    assert cpu_pool.used_pages == 0


def test_can_admit_respects_capacity(tiny_model):
    small_pool = MemoryPool(name="cpu", capacity_bytes=256e3, page_bytes=16e3)
    manager = KVCacheManager(tiny_model, small_pool)
    per_token = manager.bytes_per_token()
    capacity_tokens = int(small_pool.capacity_bytes / per_token)
    assert manager.can_admit(prompt_tokens=capacity_tokens // 2, generation_len=0)
    assert not manager.can_admit(prompt_tokens=capacity_tokens * 2, generation_len=0)
