"""Tests for the paged KV-cache manager."""

import pytest

from repro.runtime.kv_cache import KVCacheManager
from repro.runtime.memory_manager import MemoryPool
from repro.utils.errors import MemoryManagerError


@pytest.fixture
def cpu_pool():
    return MemoryPool(name="cpu", capacity_bytes=64e6, page_bytes=64e3)


@pytest.fixture
def gpu_pool():
    return MemoryPool(name="gpu", capacity_bytes=16e6, page_bytes=64e3)


def test_bytes_per_token_matches_memory_model(tiny_model, cpu_pool):
    from repro.models.memory import kv_cache_bytes_per_token

    manager = KVCacheManager(tiny_model, cpu_pool)
    assert manager.bytes_per_token() == pytest.approx(kv_cache_bytes_per_token(tiny_model))


def test_register_and_grow_sequence(tiny_model, cpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool)
    manager.register_sequence(0, prompt_tokens=100)
    assert manager.total_tokens == 100
    manager.append_tokens(0, 10)
    assert manager.total_tokens == 110
    assert manager.cpu_bytes > 0
    assert manager.gpu_bytes == 0


def test_gpu_ratio_splits_allocation(tiny_model, cpu_pool, gpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool, gpu_pool=gpu_pool, gpu_ratio=0.5)
    manager.register_sequence(0, prompt_tokens=200)
    assert manager.gpu_bytes > 0
    assert manager.cpu_bytes > 0
    # Pages are rounded up, so the split is approximate.
    assert manager.gpu_bytes == pytest.approx(manager.cpu_bytes, rel=0.2)


def test_gpu_ratio_without_pool_rejected(tiny_model, cpu_pool):
    with pytest.raises(MemoryManagerError):
        KVCacheManager(tiny_model, cpu_pool, gpu_ratio=0.5)


def test_duplicate_sequence_rejected(tiny_model, cpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool)
    manager.register_sequence(0, prompt_tokens=10)
    with pytest.raises(MemoryManagerError):
        manager.register_sequence(0, prompt_tokens=10)


def test_release_sequence_frees_pool(tiny_model, cpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool)
    manager.register_sequence(0, prompt_tokens=500)
    used = cpu_pool.used_pages
    assert used > 0
    manager.release_sequence(0)
    assert cpu_pool.used_pages == 0
    with pytest.raises(MemoryManagerError):
        manager.release_sequence(0)


def test_release_all(tiny_model, cpu_pool):
    manager = KVCacheManager(tiny_model, cpu_pool)
    for sequence_id in range(5):
        manager.register_sequence(sequence_id, prompt_tokens=50)
    manager.release_all()
    assert manager.total_tokens == 0
    assert cpu_pool.used_pages == 0


def test_can_admit_respects_capacity(tiny_model):
    small_pool = MemoryPool(name="cpu", capacity_bytes=256e3, page_bytes=16e3)
    manager = KVCacheManager(tiny_model, small_pool)
    per_token = manager.bytes_per_token()
    capacity_tokens = int(small_pool.capacity_bytes / per_token)
    assert manager.can_admit(prompt_tokens=capacity_tokens // 2, generation_len=0)
    assert not manager.can_admit(prompt_tokens=capacity_tokens * 2, generation_len=0)


# ----------------------------------------------------------------------
# Shared-prefix regime (prefix_cache=True)
# ----------------------------------------------------------------------
class TestPrefixCacheRegime:
    def make_manager(self, model, capacity_blocks=64):
        from repro.models.memory import kv_cache_bytes_per_token_per_layer

        block_tokens = 16
        block_bytes = (
            block_tokens * kv_cache_bytes_per_token_per_layer(model) * model.num_layers
        )
        pool = MemoryPool("cpu", capacity_blocks * block_bytes, block_bytes)
        return KVCacheManager(
            model, pool, block_tokens=block_tokens, prefix_cache=True
        )

    def test_identical_prompts_share_blocks(self, tiny_model):
        manager = self.make_manager(tiny_model)
        tokens = tuple(range(64))
        manager.register_sequence(0, 64, token_ids=tokens)
        used_after_first = manager.cpu_pool.used_pages
        cache = manager.register_sequence(1, 64, token_ids=tokens)
        # Three full blocks shared (the fourth must be recomputed/owned).
        assert cache.cached_tokens == 48
        assert manager.cpu_pool.used_pages == used_after_first + 1

    def test_released_prompts_stay_matchable(self, tiny_model):
        manager = self.make_manager(tiny_model)
        tokens = tuple(range(64))
        manager.register_sequence(0, 64, token_ids=tokens)
        manager.release_sequence(0)
        assert manager.match_prefix(tokens) == 48
        cache = manager.register_sequence(1, 64, token_ids=tokens)
        assert cache.cached_tokens == 48

    def test_growing_prompt_reuses_shorter_history(self, tiny_model):
        """A chat turn's prompt reuses the previous turn's cached blocks."""
        manager = self.make_manager(tiny_model)
        turn1 = tuple(range(48))
        manager.register_sequence(0, 48, token_ids=turn1)
        manager.release_sequence(0)
        turn2 = turn1 + tuple(range(100, 148))
        cache = manager.register_sequence(1, 96, token_ids=turn2)
        assert cache.cached_tokens == 48

    def test_reservation_beyond_prompt_is_private(self, tiny_model):
        """Generated-token blocks never enter the content index."""
        manager = self.make_manager(tiny_model)
        tokens = tuple(range(32))
        manager.register_sequence(0, 32 + 32, token_ids=tokens)  # +generation
        manager.release_sequence(0)
        # Only the prompt's 2 full blocks remain cached; generation blocks
        # freed outright.
        assert manager.block_store.num_cached_blocks == 2

    def test_unique_prompts_degenerate_to_private_accounting(self, tiny_model):
        manager = self.make_manager(tiny_model)
        manager.register_sequence(0, 64, token_ids=tuple(range(64)))
        manager.register_sequence(1, 64, token_ids=tuple(range(1000, 1064)))
        assert manager.cpu_pool.used_pages == 8
        manager.release_all()
        # Hashed prompt blocks linger as cache; the store still frees the
        # pool once eviction reclaims them.
        assert manager.total_tokens == 0

    def test_append_tokens_fills_private_tail(self, tiny_model):
        manager = self.make_manager(tiny_model)
        manager.register_sequence(0, 40, token_ids=tuple(range(40)))
        used = manager.cpu_pool.used_pages
        manager.append_tokens(0, 8)  # fits the half-full tail block
        assert manager.cpu_pool.used_pages == used
        manager.append_tokens(0, 16)  # spills into a fresh block
        assert manager.cpu_pool.used_pages == used + 1
        assert manager.sequences[0].num_tokens == 64

    def test_can_admit_is_incremental_under_hits(self, tiny_model):
        manager = self.make_manager(tiny_model, capacity_blocks=5)
        tokens = tuple(range(64))
        manager.register_sequence(0, 64, token_ids=tokens)  # 4 blocks
        # A cold prompt of 4 blocks cannot fit alongside (5 - 4 = 1 free).
        assert not manager.can_admit(64, 0, token_ids=tuple(range(500, 564)))
        # The same-size cached prompt needs only its final block.
        assert manager.can_admit(64, 0, token_ids=tokens)

    def test_register_rollback_on_capacity_error(self, tiny_model):
        manager = self.make_manager(tiny_model, capacity_blocks=4)
        manager.register_sequence(0, 48, token_ids=tuple(range(48)))
        with pytest.raises(MemoryManagerError):
            manager.register_sequence(1, 48, token_ids=tuple(range(500, 548)))
        # The failed registration left nothing behind.
        assert 1 not in manager.sequences
        live = [b for b in manager.block_store.blocks.values() if b.ref_count > 0]
        assert len(live) == 3
