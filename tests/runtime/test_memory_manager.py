"""Tests for the paged memory pools and page tables."""

import pytest

from repro.runtime.memory_manager import MemoryPool, PageTable
from repro.utils.errors import MemoryManagerError


def test_pool_page_count_and_capacity():
    pool = MemoryPool(name="gpu", capacity_bytes=1000, page_bytes=100)
    assert pool.num_pages == 10
    assert pool.capacity_bytes == 1000
    assert pool.free_pages == 10


def test_pool_rejects_capacity_smaller_than_a_page():
    with pytest.raises(MemoryManagerError):
        MemoryPool(name="p", capacity_bytes=50, page_bytes=100)


def test_allocate_rounds_up_to_pages():
    pool = MemoryPool(name="p", capacity_bytes=1000, page_bytes=100)
    allocation = pool.allocate(250)
    assert allocation.num_pages == 3
    assert pool.used_pages == 3
    assert pool.used_bytes == 300
    assert 0.0 < pool.utilization < 1.0


def test_allocation_and_free_round_trip():
    pool = MemoryPool(name="p", capacity_bytes=1000, page_bytes=100)
    allocation = pool.allocate(500)
    pool.free(allocation)
    assert pool.free_pages == 10
    with pytest.raises(MemoryManagerError):
        pool.free(allocation)  # double free


def test_out_of_memory_raises():
    pool = MemoryPool(name="p", capacity_bytes=300, page_bytes=100)
    pool.allocate(300)
    assert not pool.can_allocate(100)
    with pytest.raises(MemoryManagerError):
        pool.allocate(1)


def test_pages_are_reused_after_free():
    pool = MemoryPool(name="p", capacity_bytes=200, page_bytes=100)
    first = pool.allocate(200)
    pool.free(first)
    second = pool.allocate(200)
    assert set(second.pages) == set(first.pages)


def test_free_foreign_allocation_rejected():
    a = MemoryPool(name="a", capacity_bytes=200, page_bytes=100)
    b = MemoryPool(name="b", capacity_bytes=200, page_bytes=100)
    allocation = a.allocate(100)
    with pytest.raises(MemoryManagerError):
        b.free(allocation)


def test_reset_clears_all_allocations():
    pool = MemoryPool(name="p", capacity_bytes=400, page_bytes=100)
    pool.allocate(400)
    pool.reset()
    assert pool.free_pages == 4


def test_zero_byte_allocation_uses_no_pages():
    pool = MemoryPool(name="p", capacity_bytes=400, page_bytes=100)
    allocation = pool.allocate(0)
    assert allocation.num_pages == 0
    assert pool.used_pages == 0


def test_page_table_map_lookup_unmap():
    pool = MemoryPool(name="p", capacity_bytes=400, page_bytes=100)
    table = PageTable()
    allocation = pool.allocate(200)
    table.map(("expert", 3), allocation)
    assert ("expert", 3) in table
    assert table.lookup(("expert", 3)) == allocation.pages
    table.unmap(("expert", 3))
    assert ("expert", 3) not in table
    with pytest.raises(MemoryManagerError):
        table.lookup(("expert", 3))
