"""Tests for the discrete-event simulator."""

import pytest

from repro.runtime.resources import ResourceKind
from repro.runtime.simulator import Simulator
from repro.runtime.tasks import TaskGraph, TaskKind
from repro.utils.errors import ScheduleError


def build_graph(entries):
    """entries: list of (kind, resource, duration, deps-as-indices)."""
    graph = TaskGraph()
    tasks = []
    for kind, resource, duration, deps in entries:
        task = graph.add(kind, resource, duration, deps=[tasks[d].task_id for d in deps])
        tasks.append(task)
    return graph, tasks


def test_single_task_runs_immediately():
    graph, _ = build_graph([(TaskKind.OTHER, ResourceKind.GPU, 2.0, [])])
    result = Simulator().run(graph)
    assert result.makespan == pytest.approx(2.0)
    assert result.utilization(ResourceKind.GPU) == pytest.approx(1.0)


def test_independent_tasks_on_different_resources_overlap():
    graph, _ = build_graph(
        [
            (TaskKind.OTHER, ResourceKind.GPU, 3.0, []),
            (TaskKind.OTHER, ResourceKind.HTOD, 3.0, []),
        ]
    )
    result = Simulator().run(graph)
    assert result.makespan == pytest.approx(3.0)


def test_same_resource_serialises_in_submission_order():
    graph, tasks = build_graph(
        [
            (TaskKind.OTHER, ResourceKind.GPU, 1.0, []),
            (TaskKind.OTHER, ResourceKind.GPU, 2.0, []),
        ]
    )
    result = Simulator().run(graph)
    assert result.makespan == pytest.approx(3.0)
    first = [e for e in result.trace if e.task_id == tasks[0].task_id][0]
    second = [e for e in result.trace if e.task_id == tasks[1].task_id][0]
    assert first.end <= second.start


def test_dependencies_are_respected():
    graph, tasks = build_graph(
        [
            (TaskKind.OTHER, ResourceKind.HTOD, 5.0, []),
            (TaskKind.OTHER, ResourceKind.GPU, 1.0, [0]),
        ]
    )
    result = Simulator().run(graph)
    assert result.completion_times[tasks[1].task_id] == pytest.approx(6.0)


def test_diamond_dependency_critical_path():
    graph, tasks = build_graph(
        [
            (TaskKind.OTHER, ResourceKind.GPU, 1.0, []),      # a
            (TaskKind.OTHER, ResourceKind.HTOD, 4.0, [0]),    # b
            (TaskKind.OTHER, ResourceKind.CPU, 2.0, [0]),     # c
            (TaskKind.OTHER, ResourceKind.GPU, 1.0, [1, 2]),  # d
        ]
    )
    result = Simulator().run(graph)
    assert result.makespan == pytest.approx(6.0)


def test_zero_duration_tasks_are_ordered_but_free():
    graph, tasks = build_graph(
        [
            (TaskKind.OTHER, ResourceKind.GPU, 0.0, []),
            (TaskKind.OTHER, ResourceKind.GPU, 1.0, [0]),
        ]
    )
    result = Simulator().run(graph)
    assert result.makespan == pytest.approx(1.0)


def test_ready_fifo_order_among_contending_tasks():
    """Two ready tasks on one resource run in submission order."""
    graph, tasks = build_graph(
        [
            (TaskKind.OTHER, ResourceKind.HTOD, 1.0, []),
            (TaskKind.OTHER, ResourceKind.HTOD, 1.0, []),
            (TaskKind.OTHER, ResourceKind.HTOD, 1.0, []),
        ]
    )
    result = Simulator().run(graph)
    order = [e.task_id for e in result.trace.events_on(ResourceKind.HTOD)]
    assert order == [t.task_id for t in tasks]


def test_empty_graph_has_zero_makespan():
    result = Simulator().run(TaskGraph())
    assert result.makespan == 0.0
    assert len(result.trace) == 0


def test_trace_has_no_overlaps_on_exclusive_resources():
    entries = []
    for index in range(20):
        deps = [index - 1] if index % 3 == 0 and index > 0 else []
        resource = list(ResourceKind)[index % 4]
        entries.append((TaskKind.OTHER, resource, 0.5 + (index % 5) * 0.1, deps))
    graph, _ = build_graph(entries)
    result = Simulator().run(graph)
    result.trace.verify_exclusive()  # raises on overlap
    assert len(result.trace) == 20


def test_forward_dependency_validation():
    graph = TaskGraph()
    with pytest.raises(ScheduleError):
        graph.add(TaskKind.OTHER, ResourceKind.GPU, 1.0, deps=[5])


def test_utilization_report_contains_all_channels():
    graph, _ = build_graph([(TaskKind.OTHER, ResourceKind.GPU, 1.0, [])])
    report = Simulator().run(graph).utilization_report()
    for key in ("gpu", "cpu", "htod", "dtoh", "makespan"):
        assert key in report
