"""Tests for tasks and task graphs."""

import pytest

from repro.runtime.resources import Resource, ResourceKind, default_resources
from repro.runtime.tasks import Task, TaskGraph, TaskKind
from repro.utils.errors import ConfigurationError, ScheduleError


def test_default_resources_cover_all_channels():
    resources = default_resources()
    assert set(resources) == set(ResourceKind)
    assert all(resource.slots == 1 for resource in resources.values())


def test_resource_rejects_zero_slots():
    with pytest.raises(ConfigurationError):
        Resource(ResourceKind.GPU, slots=0)


def test_task_label_defaults_to_kind_layer_mb():
    task = Task(task_id=0, kind=TaskKind.POST_ATTENTION, resource=ResourceKind.GPU,
                duration=1.0, layer=3, micro_batch=2)
    assert task.label == "post_attn[L3,mb2]"


def test_task_rejects_negative_duration():
    with pytest.raises(ConfigurationError):
        Task(task_id=0, kind=TaskKind.OTHER, resource=ResourceKind.GPU, duration=-1.0)


def test_graph_add_assigns_sequential_ids():
    graph = TaskGraph()
    first = graph.add(TaskKind.OTHER, ResourceKind.GPU, 1.0)
    second = graph.add(TaskKind.OTHER, ResourceKind.CPU, 1.0, deps=[first.task_id])
    assert [first.task_id, second.task_id] == [0, 1]
    assert graph.get(1).deps == [0]
    assert len(graph) == 2


def test_graph_none_deps_are_ignored():
    graph = TaskGraph()
    task = graph.add(TaskKind.OTHER, ResourceKind.GPU, 1.0, deps=[None])
    assert task.deps == []


def test_graph_unknown_dep_rejected():
    graph = TaskGraph()
    with pytest.raises(ScheduleError):
        graph.add(TaskKind.OTHER, ResourceKind.GPU, 1.0, deps=[3])


def test_graph_get_unknown_id_rejected():
    with pytest.raises(ScheduleError):
        TaskGraph().get(0)


def test_tasks_on_and_total_work():
    graph = TaskGraph()
    graph.add(TaskKind.OTHER, ResourceKind.GPU, 1.0)
    graph.add(TaskKind.OTHER, ResourceKind.GPU, 2.0)
    graph.add(TaskKind.OTHER, ResourceKind.HTOD, 4.0)
    assert len(graph.tasks_on(ResourceKind.GPU)) == 2
    assert graph.total_work(ResourceKind.GPU) == pytest.approx(3.0)
    assert graph.total_work(ResourceKind.DTOH) == 0.0


def test_validate_passes_for_well_formed_graph():
    graph = TaskGraph()
    a = graph.add(TaskKind.OTHER, ResourceKind.GPU, 1.0)
    graph.add(TaskKind.OTHER, ResourceKind.CPU, 1.0, deps=[a.task_id])
    graph.validate()
