"""Tests for traces: utilisation, bubbles, windows and Gantt rendering."""

import pytest

from repro.runtime.resources import ResourceKind
from repro.runtime.tasks import TaskKind
from repro.runtime.trace import Trace, TraceEvent
from repro.utils.errors import SimulationError


def event(task_id, resource, start, end, kind=TaskKind.OTHER):
    return TraceEvent(task_id=task_id, kind=kind, resource=resource, start=start, end=end)


@pytest.fixture
def trace():
    t = Trace()
    t.add(event(0, ResourceKind.GPU, 0.0, 1.0, TaskKind.PRE_ATTENTION))
    t.add(event(1, ResourceKind.GPU, 2.0, 3.0, TaskKind.POST_ATTENTION))
    t.add(event(2, ResourceKind.HTOD, 0.0, 3.0, TaskKind.WEIGHT_TRANSFER))
    t.add(event(3, ResourceKind.CPU, 1.0, 2.0, TaskKind.CPU_ATTENTION))
    return t


def test_makespan_and_busy_time(trace):
    assert trace.makespan == 3.0
    assert trace.busy_time(ResourceKind.GPU) == pytest.approx(2.0)
    assert trace.utilization(ResourceKind.GPU) == pytest.approx(2.0 / 3.0)
    assert trace.utilization(ResourceKind.HTOD) == pytest.approx(1.0)


def test_bubbles_detected_between_events(trace):
    gaps = trace.bubbles(ResourceKind.GPU)
    assert gaps == [(1.0, 2.0)]
    assert trace.bubble_time(ResourceKind.GPU) == pytest.approx(1.0)
    assert trace.bubble_fraction(ResourceKind.GPU) == pytest.approx(1.0 / 3.0)


def test_no_bubbles_on_fully_busy_channel(trace):
    assert trace.bubbles(ResourceKind.HTOD) == []
    assert trace.bubble_fraction(ResourceKind.DTOH) == 0.0


def test_events_of_kind(trace):
    assert len(trace.events_of(TaskKind.WEIGHT_TRANSFER)) == 1


def test_window_clips_events(trace):
    window = trace.window(0.5, 2.5)
    assert window.makespan == 2.5
    gpu_events = window.events_on(ResourceKind.GPU)
    assert gpu_events[0].start == 0.5 and gpu_events[0].end == 1.0
    with pytest.raises(SimulationError):
        trace.window(2.0, 1.0)


def test_verify_exclusive_detects_overlap():
    bad = Trace()
    bad.add(event(0, ResourceKind.GPU, 0.0, 2.0))
    bad.add(event(1, ResourceKind.GPU, 1.0, 3.0))
    with pytest.raises(SimulationError):
        bad.verify_exclusive()


def test_event_rejects_negative_span():
    with pytest.raises(SimulationError):
        event(0, ResourceKind.GPU, 2.0, 1.0)


def test_gantt_renders_one_row_per_channel(trace):
    art = trace.gantt(width=40)
    lines = art.splitlines()
    assert len(lines) == len(list(ResourceKind))
    gpu_line = next(line for line in lines if line.strip().startswith("gpu"))
    assert "A" in gpu_line and "C" in gpu_line
    htod_line = next(line for line in lines if line.strip().startswith("htod"))
    assert "W" in htod_line


def test_gantt_empty_trace():
    assert "(empty trace)" in Trace().gantt()


def test_utilization_report_keys(trace):
    report = trace.utilization_report()
    assert set(report) == {"gpu", "cpu", "htod", "dtoh", "makespan"}
