"""Tests for the paged weight manager (Appendix A.1)."""

import pytest

from repro.core.policy import Policy
from repro.models.memory import attention_weight_bytes, layer_weight_bytes
from repro.runtime.memory_manager import MemoryPool
from repro.runtime.weights import PagedWeightManager
from repro.utils.errors import MemoryManagerError


@pytest.fixture
def policy():
    return Policy(batch_size=256, micro_batch_size=64, weights_gpu_ratio=0.25)


@pytest.fixture
def manager(tiny_model, policy):
    streamed = policy.weights_cpu_ratio * layer_weight_bytes(tiny_model)
    pool = MemoryPool(name="gpu", capacity_bytes=streamed * 8, page_bytes=streamed / 16)
    return PagedWeightManager(model=tiny_model, policy=policy, gpu_pool=pool)


def test_streamed_bytes_follow_policy_ratio(tiny_model, policy, manager):
    expected = 0.75 * layer_weight_bytes(tiny_model)
    assert manager.streamed_bytes_per_layer() == pytest.approx(expected)


def test_cpu_ffn_policy_streams_only_attention_weights(tiny_model):
    policy = Policy(
        batch_size=64, micro_batch_size=32, ffn_on_gpu=False, weights_gpu_ratio=0.0,
    )
    streamed = layer_weight_bytes(tiny_model)
    pool = MemoryPool(name="gpu", capacity_bytes=streamed * 8, page_bytes=streamed / 64)
    manager = PagedWeightManager(model=tiny_model, policy=policy, gpu_pool=pool)
    assert manager.streamed_bytes_per_layer() == pytest.approx(
        attention_weight_bytes(tiny_model)
    )


def test_pages_per_layer_equals_micro_batches(manager, policy):
    pages = manager.pages_for_layer(0)
    assert len(pages) == policy.num_micro_batches
    total = sum(page.num_bytes for page in pages)
    assert total == pytest.approx(manager.streamed_bytes_per_layer())


def test_double_buffer_rotation(manager):
    manager.begin_prefetch(0)
    manager.advance_layer()
    assert manager.resident_layer == 0
    manager.begin_prefetch(1)
    assert manager.incoming_layer == 1
    manager.advance_layer()
    assert manager.resident_layer == 1
    assert manager.incoming_layer is None


def test_conflicting_prefetch_rejected(manager):
    manager.begin_prefetch(0)
    with pytest.raises(MemoryManagerError):
        manager.begin_prefetch(1)


def test_advance_without_prefetch_rejected(manager):
    with pytest.raises(MemoryManagerError):
        manager.advance_layer()


def test_release_returns_pages_to_pool(tiny_model, policy):
    streamed = policy.weights_cpu_ratio * layer_weight_bytes(tiny_model)
    pool = MemoryPool(name="gpu", capacity_bytes=streamed * 8, page_bytes=streamed / 16)
    manager = PagedWeightManager(model=tiny_model, policy=policy, gpu_pool=pool)
    used_before_release = pool.used_pages
    assert used_before_release > 0
    manager.release()
    assert pool.used_pages == 0


def test_resident_bytes_total(tiny_model, policy, manager):
    expected = 0.25 * layer_weight_bytes(tiny_model) * tiny_model.num_layers
    assert manager.resident_bytes_total() == pytest.approx(expected)


def test_fully_resident_policy_needs_no_buffers(tiny_model):
    policy = Policy(batch_size=64, micro_batch_size=32, weights_gpu_ratio=1.0)
    pool = MemoryPool(name="gpu", capacity_bytes=1e9, page_bytes=1e6)
    manager = PagedWeightManager(model=tiny_model, policy=policy, gpu_pool=pool)
    assert manager.streamed_bytes_per_layer() == 0.0
    assert pool.used_pages == 0


def test_describe_mentions_pages(manager):
    assert "pages/layer" in manager.describe()
