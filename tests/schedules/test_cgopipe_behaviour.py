"""Behavioural tests: CGOPipe's advantage over the baseline schedules."""

import pytest

from repro.core.policy import Policy
from repro.runtime.resources import ResourceKind
from repro.schedules import (
    CGOPipeSchedule,
    FastDecodeSchedule,
    FlexGenCPUSchedule,
    FlexGenSchedule,
)


@pytest.fixture(scope="module")
def policy():
    """A memory-constrained Mixtral/T4 shape: 15 micro-batches of 64."""
    return Policy(
        batch_size=960, micro_batch_size=64, attention_on_gpu=False,
        ffn_on_gpu=True, weights_gpu_ratio=0.05,
    )


@pytest.fixture(scope="module")
def timings(mixtral, t4_node, policy):
    gpu_policy = Policy(
        batch_size=policy.batch_size, micro_batch_size=policy.micro_batch_size,
        attention_on_gpu=True, ffn_on_gpu=True,
        weights_gpu_ratio=policy.weights_gpu_ratio, kv_cache_gpu_ratio=0.0,
    )
    results = {}
    for schedule_cls, run_policy in (
        (CGOPipeSchedule, policy),
        (FastDecodeSchedule, policy),
        (FlexGenCPUSchedule, policy),
        (FlexGenSchedule, gpu_policy),
    ):
        schedule = schedule_cls(mixtral, t4_node, max_sim_layers=6)
        results[schedule_cls.name] = schedule.step_timing(run_policy, context_len=480)
    return results


def test_cgopipe_is_fastest_schedule(timings):
    """Fig. 6 / §5: CGOPipe beats every baseline schedule per decode step."""
    cgopipe = timings["cgopipe"].step_time
    for name, timing in timings.items():
        if name != "cgopipe":
            assert timing.step_time > cgopipe


def test_cgopipe_has_smallest_gpu_bubble_fraction(timings):
    cgopipe = timings["cgopipe"].gpu_bubble_fraction
    for name, timing in timings.items():
        if name != "cgopipe":
            assert timing.gpu_bubble_fraction > cgopipe


def test_cgopipe_keeps_interconnect_busy(timings):
    """Paged weights keep the HtoD channel near-saturated."""
    assert timings["cgopipe"].utilization["htod"] > 0.9


def test_paging_improves_over_unpaged_pipeline(timings):
    """CGOPipe vs FastDecode isolates the weight-paging contribution."""
    assert timings["fastdecode"].step_time > 1.2 * timings["cgopipe"].step_time


def test_flexgen_pays_for_kv_swapping(timings):
    """S4 moves the whole KV cache over PCIe each step: slowest of the four."""
    assert timings["flexgen"].step_time == max(t.step_time for t in timings.values())


def test_gpu_utilization_ordering(timings):
    assert timings["cgopipe"].utilization["gpu"] > timings["fastdecode"].utilization["gpu"]
    assert timings["cgopipe"].utilization["gpu"] > timings["flexgen_cpu"].utilization["gpu"]


def test_cgopipe_interleaves_weight_pages_with_hidden_loads(mixtral, t4_node, policy):
    """On the HtoD channel, weight pages and hidden loads alternate rather
    than the weights forming one solid block."""
    schedule = CGOPipeSchedule(mixtral, t4_node, max_sim_layers=4)
    result = schedule.simulate(policy, context_len=480, num_steps=1)
    events = result.trace.events_on(ResourceKind.HTOD)
    kinds = [event.kind.value for event in events]
    # Find positions of hidden loads; weight pages must appear both before and
    # after some hidden load (interleaving), not all clustered at one end.
    first_hidden = kinds.index("hidden_load")
    last_hidden = len(kinds) - 1 - kinds[::-1].index("hidden_load")
    weights_between = [
        kind for kind in kinds[first_hidden : last_hidden + 1]
        if kind == "weight_transfer"
    ]
    assert weights_between, "weight pages should interleave with hidden loads"
