"""Tests shared across the pipeline schedules."""

import pytest

from repro.core.policy import Policy
from repro.runtime.tasks import TaskKind
from repro.schedules import (
    SCHEDULE_REGISTRY,
    CGOPipeSchedule,
    DeepSpeedSchedule,
    FastDecodeSchedule,
    FlexGenCPUSchedule,
    FlexGenSchedule,
)
from repro.utils.errors import ScheduleError

CPU_POLICY = Policy(
    batch_size=96, micro_batch_size=32, attention_on_gpu=False,
    ffn_on_gpu=True, weights_gpu_ratio=0.1,
)
GPU_POLICY = Policy(
    batch_size=96, micro_batch_size=32, attention_on_gpu=True,
    ffn_on_gpu=True, weights_gpu_ratio=0.1, kv_cache_gpu_ratio=0.0,
)
DS_POLICY = Policy(
    batch_size=64, micro_batch_size=64, attention_on_gpu=True,
    ffn_on_gpu=True, weights_gpu_ratio=0.0, kv_cache_gpu_ratio=1.0,
)

SCHEDULE_POLICIES = [
    (CGOPipeSchedule, CPU_POLICY),
    (FastDecodeSchedule, CPU_POLICY),
    (FlexGenCPUSchedule, CPU_POLICY),
    (FlexGenSchedule, GPU_POLICY),
    (DeepSpeedSchedule, DS_POLICY),
]


def test_registry_contains_all_schedules():
    assert set(SCHEDULE_REGISTRY) == {
        "cgopipe", "fastdecode", "flexgen_cpu", "flexgen", "deepspeed",
    }


@pytest.mark.parametrize(("schedule_cls", "policy"), SCHEDULE_POLICIES)
def test_graph_builds_and_simulates(schedule_cls, policy, mixtral, t4_node):
    schedule = schedule_cls(mixtral, t4_node, max_sim_layers=3)
    result = schedule.simulate(policy, context_len=300, num_steps=2)
    assert result.makespan > 0
    result.trace.verify_exclusive()


@pytest.mark.parametrize(("schedule_cls", "policy"), SCHEDULE_POLICIES)
def test_every_step_has_one_sample_task(schedule_cls, policy, mixtral, t4_node):
    schedule = schedule_cls(mixtral, t4_node, max_sim_layers=3)
    graph = schedule.build_decode_graph(policy, context_len=300, num_steps=2)
    samples = [t for t in graph if t.kind is TaskKind.SAMPLE]
    assert len(samples) == 2
    assert {t.step for t in samples} == {0, 1}


@pytest.mark.parametrize(("schedule_cls", "policy"), SCHEDULE_POLICIES)
def test_post_attention_count_matches_layers_and_micro_batches(
    schedule_cls, policy, mixtral, t4_node
):
    schedule = schedule_cls(mixtral, t4_node, max_sim_layers=3)
    graph = schedule.build_decode_graph(policy, context_len=300, num_steps=1)
    posts = [t for t in graph if t.kind is TaskKind.POST_ATTENTION]
    expected = schedule.sim_num_layers * policy.num_micro_batches
    assert len(posts) == expected


@pytest.mark.parametrize(("schedule_cls", "policy"), SCHEDULE_POLICIES)
def test_step_timing_positive_and_scales_to_full_depth(
    schedule_cls, policy, mixtral, t4_node
):
    schedule = schedule_cls(mixtral, t4_node, max_sim_layers=3)
    timing = schedule.step_timing(policy, context_len=300)
    assert timing.step_time > 0
    # The scaled step should be close to (full depth / simulated depth) times
    # the per-layer period, i.e. much bigger than one simulated layer.
    assert timing.step_time > timing.makespan / (timing.num_steps * 4)


@pytest.mark.parametrize(("schedule_cls", "policy"), SCHEDULE_POLICIES)
def test_decode_time_increases_with_generation_length(
    schedule_cls, policy, mixtral, t4_node
):
    schedule = schedule_cls(mixtral, t4_node, max_sim_layers=2)
    short = schedule.decode_time(policy, start_context=200, generation_len=8, num_samples=2)
    long = schedule.decode_time(policy, start_context=200, generation_len=32, num_samples=2)
    assert long > 2 * short


def test_cpu_schedules_reject_gpu_attention_policy(mixtral, t4_node):
    schedule = CGOPipeSchedule(mixtral, t4_node, max_sim_layers=2)
    with pytest.raises(ScheduleError):
        schedule.simulate(GPU_POLICY, context_len=128)


def test_gpu_schedule_rejects_cpu_attention_policy(mixtral, t4_node):
    schedule = FlexGenSchedule(mixtral, t4_node, max_sim_layers=2)
    with pytest.raises(ScheduleError):
        schedule.simulate(CPU_POLICY, context_len=128)


def test_cgopipe_rejects_cpu_ffn_policy(mixtral, t4_node):
    schedule = CGOPipeSchedule(mixtral, t4_node, max_sim_layers=2)
    policy = Policy(
        batch_size=64, micro_batch_size=32, attention_on_gpu=False, ffn_on_gpu=False,
    )
    with pytest.raises(ScheduleError):
        schedule.simulate(policy, context_len=128)


def test_deepspeed_requires_whole_batch_and_gpu_kv(mixtral, t4_node):
    schedule = DeepSpeedSchedule(mixtral, t4_node, max_sim_layers=2)
    with pytest.raises(ScheduleError):
        schedule.simulate(GPU_POLICY, context_len=128)  # N != mu
    partial_kv = Policy(
        batch_size=64, micro_batch_size=64, attention_on_gpu=True,
        kv_cache_gpu_ratio=0.5,
    )
    with pytest.raises(ScheduleError):
        schedule.simulate(partial_kv, context_len=128)


def test_cpu_attention_tasks_only_in_cpu_schedules(mixtral, t4_node):
    for schedule_cls, policy in SCHEDULE_POLICIES:
        schedule = schedule_cls(mixtral, t4_node, max_sim_layers=2)
        graph = schedule.build_decode_graph(policy, context_len=200, num_steps=1)
        cpu_attn = [t for t in graph if t.kind is TaskKind.CPU_ATTENTION]
        if schedule.uses_cpu_attention:
            assert cpu_attn
        else:
            assert not cpu_attn


def test_kv_transfer_tasks_only_in_flexgen_schedule(mixtral, t4_node):
    flexgen = FlexGenSchedule(mixtral, t4_node, max_sim_layers=2)
    graph = flexgen.build_decode_graph(GPU_POLICY, context_len=200, num_steps=1)
    assert any(t.kind is TaskKind.KV_TRANSFER for t in graph)
    deepspeed = DeepSpeedSchedule(mixtral, t4_node, max_sim_layers=2)
    graph = deepspeed.build_decode_graph(DS_POLICY, context_len=200, num_steps=1)
    assert not any(t.kind is TaskKind.KV_TRANSFER for t in graph)


def test_weight_transfers_absent_when_fully_resident(mixtral, t4_node):
    resident = Policy(
        batch_size=96, micro_batch_size=32, attention_on_gpu=False,
        ffn_on_gpu=True, weights_gpu_ratio=1.0,
    )
    schedule = CGOPipeSchedule(mixtral, t4_node, max_sim_layers=2)
    graph = schedule.build_decode_graph(resident, context_len=200, num_steps=1)
    assert not any(t.kind is TaskKind.WEIGHT_TRANSFER for t in graph)


def test_cgopipe_paged_weight_tasks_count(mixtral, t4_node):
    """CGOPipe cuts each streamed layer into one page per micro-batch."""
    schedule = CGOPipeSchedule(mixtral, t4_node, max_sim_layers=3)
    graph = schedule.build_decode_graph(CPU_POLICY, context_len=200, num_steps=1)
    pages = [t for t in graph if t.kind is TaskKind.WEIGHT_TRANSFER]
    # Layers 1 and 2 are streamed within the step (layer 0 is the warm start).
    expected = (schedule.sim_num_layers - 1) * CPU_POLICY.num_micro_batches
    assert len(pages) == expected


def test_monolithic_weight_transfer_count_in_baselines(mixtral, t4_node):
    for schedule_cls in (FastDecodeSchedule, FlexGenCPUSchedule, FlexGenSchedule):
        policy = CPU_POLICY if schedule_cls is not FlexGenSchedule else GPU_POLICY
        schedule = schedule_cls(mixtral, t4_node, max_sim_layers=3)
        graph = schedule.build_decode_graph(policy, context_len=200, num_steps=1)
        transfers = [t for t in graph if t.kind is TaskKind.WEIGHT_TRANSFER]
        assert len(transfers) == schedule.sim_num_layers - 1
