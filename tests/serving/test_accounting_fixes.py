"""Regression tests for the serving-loop accounting fixes.

Each test pins one of the event-ordering/accounting bugs fixed alongside
the event-loop refactor:

* the chunked-prefill admission budget charges a prefix-cache hit its
  *remaining* prompt tokens, not its full prompt length;
* a mixed step counts each request exactly once in
  ``EngineStep.num_requests``;
* p95 latencies are surfaced in report rows;
* a queue-full drop leaves an engine's clock untouched.
"""

import pytest

from repro.serving import SLO, ServingRequest, summarize
from repro.serving.admission import AdmissionController
from repro.serving.queue import RequestQueue, RequestState
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.serving.server import EngineCore, EngineStepModel
from repro.systems import MoELightningSystem
from repro.workloads import Request, mtbench

BLOCK = 16
PREFIX = tuple(range(4 * BLOCK))  # four full cacheable blocks


@pytest.fixture(scope="module")
def setup(mixtral, t4_node):
    workload = mtbench(generation_len=8, num_requests=16)
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    return backend, workload, policy


def make_admission(setup, prefix_cache):
    backend, workload, policy = setup
    return AdmissionController(
        model=backend.model,
        hardware=backend.hardware,
        workload=workload,
        policy=policy,
        block_tokens=BLOCK,
        prefix_cache=prefix_cache,
    )


def chat_request(tail_tokens, generation_len=8):
    token_ids = PREFIX + tail_tokens
    return ServingRequest(
        request=Request(
            input_len=len(token_ids),
            generation_len=generation_len,
            token_ids=token_ids,
        ),
        arrival_time=0.0,
    )


class TestChunkBudgetChargesPrefillRemaining:
    """A cache hit's cached tokens are skipped at prefill, so they must
    not consume chunked-prefill budget at admission either."""

    CHUNK_TOKENS = 96  # 80-token prompts: cold fits 2, warm (16 left) fits 6

    def chunk_sizes(self, setup, prefix_cache):
        backend, workload, policy = setup
        admission = make_admission(setup, prefix_cache)
        if prefix_cache:
            # Warm the shard's block store with the shared prefix.
            seed_request = chat_request(tuple(range(1000, 1016)))
            admission.admit(seed_request)
            admission.release(seed_request)
        scheduler = ContinuousBatchingScheduler(
            policy,
            admission,
            scheduling="prefill-first",
            chunk_tokens=self.CHUNK_TOKENS,
        )
        queue = RequestQueue()
        for i in range(8):
            queue.push(chat_request(tuple(range(2000 + 16 * i, 2016 + 16 * i))))
        action = scheduler.next_action(1, queue)  # decoders running -> mixed
        assert action.kind == "mixed"
        return len(action.chunk)

    def test_cache_on_admits_strictly_more_per_chunk(self, setup):
        cold = self.chunk_sizes(setup, prefix_cache=False)
        warm = self.chunk_sizes(setup, prefix_cache=True)
        assert cold == 2  # 80 + 80 tokens exhaust the 96-token budget
        assert warm == 6  # 6 x 16 remaining tokens fill it exactly
        assert warm > cold


class TestMixedStepCountsEachRequestOnce:
    def test_num_requests_counts_decoders_plus_worked_prompts(self, setup):
        backend, workload, policy = setup
        core = EngineCore(
            backend=backend,
            workload=workload,
            policy=policy,
            step_model=EngineStepModel(backend, workload, policy),
            chunk_prefill_tokens=64,
        )
        first = ServingRequest(
            request=Request(input_len=32, generation_len=8), arrival_time=0.0
        )
        assert core.offer(first)
        assert core.run_step() == "prefill"
        assert len(core.running) == 1

        second = ServingRequest(
            request=Request(input_len=48, generation_len=8),
            arrival_time=core.now,
        )
        assert core.offer(second)
        assert core.run_step() == "mixed"
        mixed = core.steps[-1]
        # One decoding request plus one chunk-worked prompt: the prompt
        # finishing prefill mid-step must not be counted a second time
        # after it joins the running set.
        assert mixed.num_requests == 2
        assert len(core.running) == 2


class TestP95Surfaced:
    def test_report_rows_carry_p95(self):
        requests = []
        for i in range(20):
            serving_request = ServingRequest(
                request=Request(input_len=32, generation_len=4),
                arrival_time=float(i),
            )
            serving_request.mark_running(float(i))
            serving_request.mark_first_token(float(i) + 1.0 + i * 0.1)
            serving_request.mark_finished(float(i) + 5.0 + i * 0.2)
            requests.append(serving_request)
        report = summarize(requests, makespan=30.0, slo=SLO(ttft=10.0, tpot=10.0))
        row = report.as_row()
        for metric in ("ttft", "tpot", "e2e"):
            assert f"{metric}_p95" in row
            assert row[f"{metric}_p50"] <= row[f"{metric}_p95"] <= row[f"{metric}_p99"]
            assert row[f"{metric}_p95"] == getattr(report, metric)[95]
        assert row["mean_ttft"] == report.mean_ttft
        assert row["mean_tpot"] == report.mean_tpot


class TestQueueFullDropLeavesClockUntouched:
    def test_drop_does_not_mutate_now(self, setup):
        backend, workload, policy = setup
        core = EngineCore(
            backend=backend,
            workload=workload,
            policy=policy,
            step_model=EngineStepModel(backend, workload, policy),
            max_queue_depth=1,
        )
        first = ServingRequest(
            request=Request(input_len=32, generation_len=4), arrival_time=1.0
        )
        assert core.offer(first)
        assert core.now == 1.0  # idle engine catches up on a successful push

        late = ServingRequest(
            request=Request(input_len=32, generation_len=4), arrival_time=7.5
        )
        assert not core.offer(late)
        assert core.now == 1.0  # the drop must not advance the clock
        assert late.state is RequestState.REJECTED
        assert late.reject_reason == "queue full"
        assert late.finish_time == 7.5
        assert core.dropped_queue_full == 1
