"""Admission control: KV-budget boundaries, slot caps, release/reuse."""

import pytest

from repro.core.policy import Policy
from repro.models.memory import kv_cache_bytes_per_token_per_layer
from repro.serving import AdmissionController, ServingRequest
from repro.utils.errors import MemoryManagerError
from repro.workloads import Request, uniform_workload

PROMPT = 16
GEN = 16
BLOCK_TOKENS = 16  # prompt + gen = exactly two KV pages per request


def make_request(prompt=PROMPT, gen=GEN):
    return ServingRequest(
        request=Request(input_len=prompt, generation_len=gen), arrival_time=0.0
    )


@pytest.fixture
def policy():
    return Policy(batch_size=8, micro_batch_size=4, attention_on_gpu=False)


def controller_with_budget(mixtral, t4_node, policy, num_requests):
    """A controller whose CPU KV budget holds exactly ``num_requests``."""
    bytes_per_token = (
        kv_cache_bytes_per_token_per_layer(mixtral) * mixtral.num_layers
    )
    budget = num_requests * (PROMPT + GEN) * bytes_per_token
    return AdmissionController(
        model=mixtral,
        hardware=t4_node,
        workload=uniform_workload(prompt_len=PROMPT, generation_len=GEN),
        policy=policy,
        block_tokens=BLOCK_TOKENS,
        cpu_kv_budget_bytes=budget,
    )


class TestKVBoundary:
    def test_rejects_exactly_at_budget(self, mixtral, t4_node, policy):
        admission = controller_with_budget(mixtral, t4_node, policy, num_requests=3)
        admitted = [make_request() for _ in range(3)]
        for serving_request in admitted:
            assert admission.admit(serving_request).admitted
        overflow = admission.admit(make_request())
        assert not overflow.admitted
        assert "KV cache" in overflow.reason
        assert admission.rejected_kv_count == 1
        assert admission.live_requests == 3

    def test_release_frees_capacity(self, mixtral, t4_node, policy):
        admission = controller_with_budget(mixtral, t4_node, policy, num_requests=2)
        first = make_request()
        second = make_request()
        assert admission.admit(first).admitted
        assert admission.admit(second).admitted
        assert not admission.admit(make_request()).admitted
        admission.release(first)
        assert admission.admit(make_request()).admitted

    def test_reservation_covers_end_of_generation(self, mixtral, t4_node, policy):
        """A short prompt with a long generation is charged its final size."""
        admission = controller_with_budget(mixtral, t4_node, policy, num_requests=2)
        # Budget holds 2 x 32 tokens; one request growing to 64 tokens takes
        # it all, leaving no room for a second.
        big = make_request(prompt=PROMPT, gen=3 * GEN)
        assert admission.admit(big).admitted
        assert not admission.admit(make_request()).admitted

    def test_check_has_no_side_effects(self, mixtral, t4_node, policy):
        admission = controller_with_budget(mixtral, t4_node, policy, num_requests=1)
        serving_request = make_request()
        assert admission.check(serving_request).admitted
        assert admission.live_requests == 0
        assert admission.admitted_count == 0


class TestSlotCap:
    def test_batch_size_caps_live_requests(self, mixtral, t4_node, policy):
        admission = controller_with_budget(mixtral, t4_node, policy, num_requests=100)
        admission.max_live_requests = 2
        assert admission.admit(make_request()).admitted
        assert admission.admit(make_request()).admitted
        decision = admission.admit(make_request())
        assert not decision.admitted
        assert "batch full" in decision.reason
        assert admission.rejected_slots_count == 1


class TestBudgetDerivation:
    def test_budget_derived_from_memory_model(self, mixtral, t4_node):
        """Without overrides the controller fits real CPU-memory headroom."""
        policy = Policy(batch_size=32, micro_batch_size=8, attention_on_gpu=False)
        admission = AdmissionController(
            model=mixtral,
            hardware=t4_node,
            workload=uniform_workload(prompt_len=128, generation_len=32),
            policy=policy,
        )
        # 192 GB node: plenty of KV room for one small request.
        assert admission.admit(make_request()).admitted

    def test_no_kv_headroom_raises(self, mixtral, t4_node):
        policy = Policy(batch_size=8, micro_batch_size=4, attention_on_gpu=False)
        with pytest.raises(MemoryManagerError):
            AdmissionController(
                model=mixtral,
                hardware=t4_node,
                workload=uniform_workload(prompt_len=128, generation_len=32),
                policy=policy,
                cpu_kv_budget_bytes=1.0,
            )

    def test_utilization_report(self, mixtral, t4_node, policy):
        admission = controller_with_budget(mixtral, t4_node, policy, num_requests=2)
        admission.admit(make_request())
        utilization = admission.utilization()
        assert utilization["kv_cpu"] == pytest.approx(0.5)
        assert utilization["live_requests"] == 1.0
