"""Arrival-process tests: determinism, rates, burstiness, replay."""

import numpy as np
import pytest

from repro.serving import (
    DeterministicProcess,
    GammaProcess,
    PoissonProcess,
    ReplayProcess,
)
from repro.utils.errors import ConfigurationError
from repro.workloads import mtbench


@pytest.fixture(scope="module")
def spec():
    return mtbench(generation_len=16, num_requests=512)


def as_tuples(stream):
    return [
        (t.request.input_len, t.request.generation_len, t.arrival_time)
        for t in stream
    ]


class TestDeterminism:
    def test_same_seed_same_stream(self, spec):
        a = PoissonProcess(rate=2.0).generate(spec, count=128, seed=42)
        b = PoissonProcess(rate=2.0).generate(spec, count=128, seed=42)
        assert as_tuples(a) == as_tuples(b)

    def test_different_seed_different_times(self, spec):
        a = PoissonProcess(rate=2.0).generate(spec, count=128, seed=1)
        b = PoissonProcess(rate=2.0).generate(spec, count=128, seed=2)
        assert [t.arrival_time for t in a] != [t.arrival_time for t in b]

    def test_processes_share_request_bodies_at_same_seed(self, spec):
        """Changing the arrival process changes when, not what, arrives."""
        poisson = PoissonProcess(rate=2.0).generate(spec, count=64, seed=7)
        gamma = GammaProcess(rate=2.0, cv=3.0).generate(spec, count=64, seed=7)
        uniform = DeterministicProcess(rate=2.0).generate(spec, count=64, seed=7)
        lengths = [t.request.input_len for t in poisson]
        assert [t.request.input_len for t in gamma] == lengths
        assert [t.request.input_len for t in uniform] == lengths


class TestRates:
    def test_poisson_mean_rate(self, spec):
        stream = PoissonProcess(rate=4.0).generate(spec, count=512, seed=0)
        times = np.array([t.arrival_time for t in stream])
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(0.25, rel=0.15)

    def test_gamma_mean_rate_and_burstiness(self, spec):
        stream = GammaProcess(rate=4.0, cv=3.0).generate(spec, count=512, seed=0)
        times = np.array([t.arrival_time for t in stream])
        gaps = np.diff(np.concatenate([[0.0], times]))
        assert gaps.mean() == pytest.approx(0.25, rel=0.2)
        cv = gaps.std() / gaps.mean()
        assert cv > 1.5  # markedly burstier than Poisson (cv = 1)

    def test_deterministic_exact_spacing(self, spec):
        stream = DeterministicProcess(rate=2.0).generate(spec, count=8, seed=0)
        times = [t.arrival_time for t in stream]
        assert times == pytest.approx([0.5 * i for i in range(1, 9)])

    def test_times_sorted_and_non_negative(self, spec):
        for process in (
            PoissonProcess(rate=1.0),
            GammaProcess(rate=1.0, cv=2.0),
            DeterministicProcess(rate=1.0),
        ):
            stream = process.generate(spec, count=64, seed=3)
            times = [t.arrival_time for t in stream]
            assert all(t >= 0 for t in times)
            assert times == sorted(times)


class TestReplay:
    def test_replays_exact_timestamps(self, spec):
        trace = [0.0, 0.5, 0.5, 2.25]
        stream = ReplayProcess(trace).generate(spec, count=4, seed=0)
        assert [t.arrival_time for t in stream] == trace

    def test_trace_shorter_than_count_rejected(self, spec):
        with pytest.raises(ConfigurationError):
            ReplayProcess([0.0, 1.0]).generate(spec, count=3, seed=0)

    def test_unsorted_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplayProcess([1.0, 0.5])

    def test_negative_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplayProcess([-1.0, 0.5])


def test_invalid_rates_rejected():
    for process_cls in (PoissonProcess, DeterministicProcess):
        with pytest.raises(Exception):
            process_cls(rate=0.0)
    with pytest.raises(Exception):
        GammaProcess(rate=1.0, cv=0.0)
