"""Chunked prefill: token budgets, mixed steps, TPOT protection."""

import pytest

from repro.experiments.serving_sweep import offline_capacity
from repro.serving import PoissonProcess, ServingSystem, default_slo
from repro.serving.admission import AdmissionController
from repro.serving.queue import RequestQueue, ServingRequest
from repro.serving.scheduler import ContinuousBatchingScheduler
from repro.systems import MoELightningSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import mtbench
from repro.workloads.request import Request

NUM_REQUESTS = 32
SEED = 0


@pytest.fixture(scope="module")
def setup(mixtral, t4_node):
    workload = mtbench(generation_len=8, num_requests=NUM_REQUESTS)
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    rate = 4.0 * offline_capacity(backend, workload, policy)
    return backend, workload, policy, slo, rate


def run_with_chunk(setup, chunk_tokens):
    backend, workload, policy, slo, rate = setup
    serving = ServingSystem(
        backend,
        workload,
        policy=policy,
        slo=slo,
        chunk_prefill_tokens=chunk_tokens,
    )
    return serving.run(PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED)


def test_chunk_tokens_must_be_positive(setup):
    backend, workload, policy, slo, rate = setup
    admission = AdmissionController(
        model=backend.model,
        hardware=backend.hardware,
        workload=workload,
        policy=policy,
    )
    with pytest.raises(ConfigurationError):
        ContinuousBatchingScheduler(policy, admission, chunk_tokens=0)


def test_chunked_run_completes_every_request(setup):
    result = run_with_chunk(setup, 128)
    assert result.report.num_completed + result.report.num_rejected == NUM_REQUESTS
    # Long prompts split across steps: prefill work rides decode iterations.
    assert any(step.kind == "mixed" for step in result.steps)


def test_chunked_prefill_protects_tpot(setup):
    plain = run_with_chunk(setup, None)
    chunked = run_with_chunk(setup, 128)
    # The whole point: decoding requests stop paying for whole-batch
    # prefills, so the TPOT tail improves; TTFT pays for it.
    assert chunked.report.tpot[99] < plain.report.tpot[99]
    assert chunked.report.ttft[99] >= plain.report.ttft[99]


def test_mixed_step_never_exceeds_budget(setup):
    backend, workload, policy, slo, rate = setup
    chunk_tokens = 64
    serving = ServingSystem(
        backend,
        workload,
        policy=policy,
        slo=slo,
        chunk_prefill_tokens=chunk_tokens,
    )
    result = serving.run(PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED)
    prefilled = sum(
        sr.request.effective_input_len
        for sr in result.requests
        if sr.first_token_time is not None
    )
    budgeted_steps = [
        step for step in result.steps if step.kind in ("prefill", "mixed")
    ]
    # Every prompt token was paid for by some budgeted step.
    assert prefilled <= chunk_tokens * len(budgeted_steps)


def test_prefill_remaining_tracks_progress():
    serving_request = ServingRequest(
        request=Request(input_len=100, generation_len=4), arrival_time=0.0
    )
    assert serving_request.prefill_remaining == 100
    assert not serving_request.is_prefill_complete
    serving_request.tokens_prefilled = 60
    assert serving_request.prefill_remaining == 40
    serving_request.mark_first_token(1.0)
    assert serving_request.is_prefill_complete
    assert serving_request.tokens_prefilled == 100


def test_scheduler_emits_mixed_only_with_running_requests(setup):
    backend, workload, policy, slo, rate = setup
    admission = AdmissionController(
        model=backend.model,
        hardware=backend.hardware,
        workload=workload,
        policy=policy,
    )
    scheduler = ContinuousBatchingScheduler(policy, admission, chunk_tokens=64)
    queue = RequestQueue()
    queue.push(
        ServingRequest(
            request=Request(input_len=200, generation_len=4), arrival_time=0.0
        )
    )
    # Empty engine: a standalone chunked prefill step.
    action = scheduler.next_action(0, queue)
    assert action.kind == "prefill"
    # With decoders running, the chunk rides the decode iteration.
    pending = action.chunk
    action = scheduler.next_action(3, queue, prefilling=pending)
    assert action.kind == "mixed"
    assert pending[0] in action.chunk
