"""Columnar prefix identity vs. the eager token path: exact equivalence.

The columnar generator ships prompt *identity* (chained block hashes plus a
lazy token source) instead of token lists; the serving hot path consumes
those hashes directly.  These are the regression tests pinning the contract:

* the columnar-hash and eager-token generators emit value-identical
  :class:`~repro.workloads.request.Request` streams — lengths, sessions,
  hash chains, and (when materialised) the token tuples themselves;
* a shared block store answers ``match_prefix`` over token ids and
  ``match_prefix_hashes`` over the request's stored chain identically;
* a seeded multi-shard cache-aware chat run serves a bit-for-bit identical
  timeline whether prompts travel as eager tokens (exact mode) or as lazy
  columnar hash chains (streaming mode).
"""

import pytest

from repro.runtime.block_store import (
    SharedBlockStore,
    chain_block_hashes,
)
from repro.runtime.memory_manager import MemoryPool
from repro.serving import PoissonProcess, default_slo
from repro.serving.sharded import ShardedServingSystem
from repro.systems import MoELightningSystem
from repro.workloads import chat
from repro.workloads.generators import (
    generate_request_columns,
    generate_requests,
)

BLOCK_TOKENS = 32
SEED = 11
NUM_REQUESTS = 96


@pytest.fixture(scope="module")
def spec():
    return chat(generation_len=8, num_requests=NUM_REQUESTS)


@pytest.fixture(scope="module")
def eager(spec):
    return generate_requests(spec, seed=SEED)


@pytest.fixture(scope="module")
def columnar(spec):
    return generate_request_columns(
        spec, seed=SEED, prefix_block_tokens=BLOCK_TOKENS
    ).materialize()


# ----------------------------------------------------------------------
# Generator equivalence
# ----------------------------------------------------------------------
class TestGeneratorEquivalence:
    def test_streams_are_value_identical(self, eager, columnar):
        assert len(columnar) == len(eager)
        for lazy, full in zip(columnar, eager):
            assert lazy.input_len == full.input_len
            assert lazy.generation_len == full.generation_len
            assert lazy.session_id == full.session_id

    def test_hash_chains_match_eager_tokens(self, eager, columnar):
        for lazy, full in zip(columnar, eager):
            expected = tuple(
                chain_block_hashes(full.token_ids, BLOCK_TOKENS)
            )
            assert lazy.prefix_hashes == expected
            assert lazy.block_hash_chain(BLOCK_TOKENS) == expected

    def test_lazy_tokens_materialise_to_the_eager_tuple(self, eager, columnar):
        for lazy, full in zip(columnar, eager):
            # Reading token_ids triggers the lazy token source; the
            # regenerated tuple must be the eager path's, bit for bit.
            assert lazy.token_ids == full.token_ids


# ----------------------------------------------------------------------
# Prefix matching equivalence
# ----------------------------------------------------------------------
def test_match_prefix_hashes_agrees_with_token_matching(eager, columnar):
    """Both prompt representations see the same cached prefixes.

    Register every stream prompt's full blocks in one shared store (turn
    order, as a single busy shard would), probing before each insertion:
    the token-id probe and the stored-chain probe must agree on every
    request, hits and misses alike.
    """
    block_bytes = 1024.0
    pool = MemoryPool("cpu", 4096 * block_bytes, block_bytes)
    store = SharedBlockStore(
        cpu_pool=pool, block_bytes=block_bytes, block_tokens=BLOCK_TOKENS
    )
    acquired: list[list[int]] = []
    some_hit = some_partial = False
    for lazy, full in zip(columnar, eager):
        chain = lazy.block_hash_chain(BLOCK_TOKENS)
        matchable = full.input_len - 1
        from_tokens = store.match_prefix(full.token_ids)
        from_hashes = store.match_prefix_hashes(chain, matchable)
        assert from_tokens == from_hashes
        some_hit = some_hit or bool(from_hashes)
        some_partial = some_partial or 0 < len(from_hashes) < len(chain)
        # Register the prompt: reuse the match, allocate the rest (only
        # blocks the one-token-short cap leaves matchable).
        store.acquire_many(from_hashes)
        block_ids = list(from_hashes)
        for depth in range(len(from_hashes), matchable // BLOCK_TOKENS):
            block = store.allocate_block(BLOCK_TOKENS, block_hash=chain[depth])
            block_ids.append(block.block_id)
        acquired.append(block_ids)
    assert some_hit, "chat stream must share prefixes across turns"
    assert some_partial, "later turns must extend earlier matches"
    for block_ids in acquired:
        store.release_many(block_ids)


# ----------------------------------------------------------------------
# Serving timeline equivalence
# ----------------------------------------------------------------------
def test_cache_aware_timeline_identical_across_token_paths(mixtral, t4_node):
    """Eager tokens (exact mode) vs. columnar hashes (streaming mode).

    One seeded 4-shard cache-aware chat run per path: admission capacity
    checks, prefix matching, shared-store registration and routing all
    consume token ids on one side and stored hash chains on the other.
    The simulated timeline must not be able to tell the difference.
    """
    num_requests = 400
    backend = MoELightningSystem(mixtral, t4_node)
    workload = chat(generation_len=8, num_requests=num_requests)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    results = {}
    for store_samples in (True, False):
        system = ShardedServingSystem(
            backend,
            workload,
            num_shards=4,
            router="cache-aware",
            prefix_cache=True,
            policy=policy,
            slo=slo,
            store_samples=store_samples,
            incremental_routing=not store_samples,
        )
        results[store_samples] = system.run(
            PoissonProcess(120.0), count=num_requests, seed=SEED
        )
    exact, streaming = results[True], results[False]
    assert streaming.makespan == exact.makespan
    assert [s.as_row() for s in streaming.shard_stats] == [
        s.as_row() for s in exact.shard_stats
    ]
    report_s, report_e = streaming.report, exact.report
    assert report_s.num_offered == report_e.num_offered
    assert report_s.num_completed == report_e.num_completed
    assert report_s.num_rejected == report_e.num_rejected
    assert report_s.goodput == report_e.goodput
    assert report_s.token_throughput == report_e.token_throughput
