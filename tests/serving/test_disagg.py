"""Disaggregated serving: phase routing, KV migration, invariants, goodput.

Covers the PR's acceptance criteria at tier 1:

* a homogeneous all-unified ``DeviceSpec`` cluster reproduces the scalar
  cluster's serving timeline bit-for-bit;
* KV migration conserves bytes and refcounts and leaves no duplicate
  hash-chain entries in any shard's block store;
* under mixed chat + long-prompt traffic, disaggregated serving meets at
  least the unified goodput at equal device count, and a heterogeneous
  fast-prefill cluster beats the same-count all-slow split.
"""

import pytest

from repro.cluster.spec import ClusterSpec, DeviceSpec
from repro.experiments.disagg_sweep import run_disagg_sweep
from repro.experiments.serving_sweep import offline_capacity
from repro.serving import PoissonProcess, ShardedServingSystem, default_slo
from repro.serving.queue import RequestState
from repro.serving.router import PhaseRouter
from repro.systems import MoELightningSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import chat, mtbench

NUM_REQUESTS = 32
SEED = 0


@pytest.fixture(scope="module")
def setup(mixtral, t4_node):
    workload = mtbench(generation_len=8, num_requests=NUM_REQUESTS)
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    rate = 6.0 * offline_capacity(backend, workload, policy)
    return backend, workload, policy, slo, rate


def run_system(setup, arrivals=None, **kwargs):
    backend, workload, policy, slo, rate = setup
    sharded = ShardedServingSystem(
        backend, workload, policy=policy, slo=slo, **kwargs
    )
    return sharded.run(
        arrivals if arrivals is not None else PoissonProcess(rate),
        count=NUM_REQUESTS,
        seed=SEED,
    )


def timeline(result):
    # Request ids come from a global counter (fresh per generated stream),
    # so identity is positional: same arrival order in both runs.
    return [
        (
            r.shard_id,
            r.arrival_time,
            r.first_token_time,
            r.finish_time,
            r.state,
        )
        for r in result.requests
    ]


class TestHomogeneousDeviceClusterBitForBit:
    """Per-device pricing of identical devices changes nothing."""

    def test_unified_timeline_identical(self, setup, t4_node):
        scalar = run_system(setup, num_shards=2, router="least-loaded")
        cluster = ClusterSpec.of_devices(
            [DeviceSpec(device_id=i, node=t4_node) for i in range(2)]
        )
        devices = run_system(setup, cluster=cluster, router="least-loaded")
        assert timeline(devices) == timeline(scalar)
        assert devices.makespan == scalar.makespan
        assert devices.report.as_row() == scalar.report.as_row()
        assert devices.admission_stats == scalar.admission_stats


class TestDisaggRun:
    def test_completes_and_conserves_migrations(self, setup):
        result = run_system(setup, num_shards=4, disaggregated=True)
        assert result.router == "phase-aware"
        assert (
            result.report.num_completed + result.report.num_rejected
            == NUM_REQUESTS
        )
        prefills = [s for s in result.shard_stats if s.role == "prefill"]
        decodes = [s for s in result.shard_stats if s.role == "decode"]
        assert prefills and decodes
        out = sum(s.migrated_out for s in prefills)
        into = sum(s.migrated_in for s in decodes)
        assert out == into > 0
        assert result.admission_stats["migrated_in"] == into
        # Decode shards never see an arrival and never run a prefill;
        # prefill shards never retire a multi-token request themselves.
        assert all(s.offered == 0 for s in decodes)
        assert all(s.prefill_stream_busy == 0.0 for s in decodes)
        assert sum(s.completed for s in decodes) == result.report.num_completed
        for serving_request in result.requests:
            if serving_request.state is RequestState.FINISHED:
                assert serving_request.first_token_time is not None
                assert (
                    serving_request.finish_time
                    > serving_request.first_token_time
                )

    def test_kv_released_everywhere_after_run(self, mixtral, t4_node):
        """Drive the run core-by-core and inspect the stores afterwards."""
        workload = chat(generation_len=8, num_requests=24, turns_per_session=4)
        backend = MoELightningSystem(mixtral, t4_node)
        policy = backend.select_policy(workload)
        sharded = ShardedServingSystem(
            backend,
            workload,
            num_shards=4,
            policy=policy,
            disaggregated=True,
            prefix_cache=True,
            chunk_prefill_tokens=96,
        )
        rate = 2.0 * offline_capacity(backend, workload, policy)
        records = sharded._materialize(PoissonProcess(rate), 24, SEED)
        from repro.serving.event_loop import ServingEventLoop
        from repro.serving.sharded import _DisaggController

        cores = sharded._make_cores()
        controller = _DisaggController(sharded, cores)
        loop = ServingEventLoop(cores, controller.route)
        controller.attach(loop)
        loop.run(records)
        assert controller.transfers > 0
        for core in cores:
            # Every reservation was released: no sequence holds KV, and
            # every resident block is a cached (refcount-zero) prefix block.
            assert core.admission.kv_cache.sequences == {}
            store = core.admission.kv_cache.block_store
            assert store is not None
            for block in store.blocks.values():
                assert block.ref_count == 0
                assert block.cached
            # The content index maps each chain hash to exactly one
            # resident block — migration re-registration never duplicated
            # an entry.
            assert len(set(store.prefix_index.values())) == len(
                store.prefix_index
            )
            for block_hash, block_id in store.prefix_index.items():
                assert store.blocks[block_id].block_hash == block_hash
        # Conservation: every transferred byte was priced on the link.
        assert controller.transfer_bytes >= 0.0

    def test_single_token_requests_finish_on_prefill_shard(
        self, mixtral, t4_node
    ):
        workload = mtbench(generation_len=1, num_requests=12)
        backend = MoELightningSystem(mixtral, t4_node)
        policy = backend.select_policy(workload)
        sharded = ShardedServingSystem(
            backend, workload, num_shards=2, policy=policy, disaggregated=True
        )
        rate = 2.0 * offline_capacity(backend, workload, policy)
        result = sharded.run(PoissonProcess(rate), count=12, seed=SEED)
        assert result.report.num_completed == 12
        assert result.admission_stats["migrated_in"] == 0
        prefill = next(s for s in result.shard_stats if s.role == "prefill")
        assert prefill.completed == 12


class TestDisaggConfiguration:
    def test_needs_two_shards(self, setup):
        backend, workload, policy, slo, rate = setup
        with pytest.raises(ConfigurationError, match="at least 2"):
            ShardedServingSystem(
                backend, workload, num_shards=1, disaggregated=True
            )

    def test_prefill_shards_requires_disaggregated(self, setup):
        backend, workload, policy, slo, rate = setup
        with pytest.raises(ConfigurationError, match="disaggregated"):
            ShardedServingSystem(
                backend, workload, num_shards=4, prefill_shards=2
            )

    def test_prefill_shards_must_leave_a_decode_shard(self, setup):
        backend, workload, policy, slo, rate = setup
        with pytest.raises(ConfigurationError, match="decode"):
            ShardedServingSystem(
                backend,
                workload,
                num_shards=2,
                disaggregated=True,
                prefill_shards=2,
            )

    def test_role_bearing_cluster_forces_disaggregation(self, setup, t4_node):
        backend, workload, policy, slo, rate = setup
        cluster = ClusterSpec.of_devices(
            [
                DeviceSpec(device_id=0, node=t4_node, role="prefill"),
                DeviceSpec(device_id=1, node=t4_node, role="decode"),
            ]
        )
        sharded = ShardedServingSystem(backend, workload, cluster=cluster)
        assert sharded.disaggregated
        assert sharded.shard_roles == ["prefill", "decode"]

    def test_time_sliced_rejects_disaggregation(self, setup):
        backend, workload, policy, slo, rate = setup
        sharded = ShardedServingSystem(
            backend, workload, num_shards=2, disaggregated=True
        )
        with pytest.raises(ConfigurationError, match="time_sliced"):
            sharded.run_time_sliced(PoissonProcess(rate), count=4, seed=SEED)


class TestPhaseRouter:
    def test_prefill_prefers_fast_and_idle(self):
        router = PhaseRouter([0, 1], [2], prefill_speeds=[2.0, 1.0, 1.0])

        class _Req:
            class request:
                effective_input_len = 100

            arrival_time = 0.0

        # Shard 0 is twice as fast: it absorbs two prompts (the second on
        # the id tie-break at equal finish estimates) before shard 1 wins.
        picks = [router.route_prefill(_Req(), [0, 0, 0]) for _ in range(3)]
        assert picks == [0, 0, 1]
        assert router.outstanding_tokens[0] == 200
        router.complete_prefill(0, 100)
        assert router.outstanding_tokens[0] == 100

    def test_decode_prefers_headroom(self):
        router = PhaseRouter([0], [1, 2], prefill_speeds=[1.0, 1.0, 1.0])
        assert router.route_decode([0, 50, 200], [0, 0, 0], now=0.0) == 2
        assert router.route_decode([0, 50, 50], [0, 3, 1], now=0.0) == 2

    def test_loading_shards_skipped_until_ready(self):
        router = PhaseRouter(
            [0, 1],
            [2],
            prefill_speeds=[1.0, 1.0, 1.0],
            ready_at=[100.0, 0.0, 0.0],
        )

        class _Req:
            class request:
                effective_input_len = 10

            arrival_time = 0.0

        # Shard 0 is still loading at t=0: everything goes to shard 1.
        assert router.route_prefill(_Req(), [0, 5, 0]) == 1

        class _Later:
            class request:
                effective_input_len = 10

            arrival_time = 200.0

        # Once ready (and idle), the faster queue position wins it traffic.
        assert router.route_prefill(_Later(), [0, 5, 0]) == 0

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError, match="prefill"):
            PhaseRouter([], [1], prefill_speeds=[1.0])


class TestDisaggSweepAcceptance:
    """The ISSUE's goodput criteria, asserted on the shipped sweep."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {
            row["config"]: row
            for row in run_disagg_sweep(seed=SEED)
        }

    def test_disagg_matches_or_beats_unified_goodput(self, rows):
        assert rows["disagg"]["goodput"] >= rows["unified"]["goodput"]

    def test_heterogeneous_beats_all_slow(self, rows):
        assert rows["disagg-het"]["goodput"] > rows["disagg"]["goodput"]

    def test_migrations_happen_only_under_disaggregation(self, rows):
        assert rows["unified"]["migrated"] == 0
        assert rows["disagg"]["migrated"] > 0
        assert rows["disagg-het"]["migrated"] > 0
