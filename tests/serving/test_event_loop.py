"""Event-driven serving loop: equivalence, ordering, and the fixed bug.

The acceptance bar for the event-loop refactor:

* a 1-shard event-driven run reproduces ``ServingSystem.run``'s
  per-request timestamps exactly;
* N-shard ``overlap=off`` runs reproduce the original time-sliced loop
  bit-for-bit under load-independent routing (round-robin,
  session-affinity);
* where the time-sliced loop was *wrong* — a shard clock overshooting the
  arrival instant mid-step, leaking future retirements into the router's
  load signal — the event loop observes the true instantaneous load.
"""

import pytest

from repro.experiments.serving_sweep import offline_capacity
from repro.serving import (
    PoissonProcess,
    ServingEventLoop,
    ServingSystem,
    ShardedServingSystem,
    TimedRequest,
    default_slo,
)
from repro.serving.server import EngineCore, EngineStepModel
from repro.systems import MoELightningSystem
from repro.utils.errors import SimulationError
from repro.workloads import Request, mtbench

NUM_REQUESTS = 32
SEED = 0


@pytest.fixture(scope="module")
def setup(mixtral, t4_node):
    workload = mtbench(generation_len=8, num_requests=NUM_REQUESTS)
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    rate = 6.0 * offline_capacity(backend, workload, policy)
    return backend, workload, policy, slo, rate


def timeline(result):
    """Positional per-request timestamps (fresh Request ids per run)."""
    return [
        (
            index,
            sr.arrival_time,
            sr.admit_time,
            sr.first_token_time,
            sr.finish_time,
            sr.state,
            sr.shard_id,
        )
        for index, sr in enumerate(result.requests)
    ]


def make_sharded(setup, num_shards, router="round-robin", **kwargs):
    backend, workload, policy, slo, rate = setup
    return ShardedServingSystem(
        backend,
        workload,
        num_shards=num_shards,
        router=router,
        policy=policy,
        slo=slo,
        **kwargs,
    )


class TestEquivalence:
    def test_one_shard_reproduces_serving_system_exactly(self, setup):
        backend, workload, policy, slo, rate = setup
        single = ServingSystem(backend, workload, policy=policy, slo=slo).run(
            PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED
        )
        event = make_sharded(setup, 1).run(
            PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED
        )
        single_times = [t[:6] for t in timeline(single)]  # no shard ids
        event_times = [t[:6] for t in timeline(event)]
        assert event_times == single_times
        assert event.makespan == single.makespan
        assert event.report == single.report

    @pytest.mark.parametrize("router", ["round-robin", "session-affinity"])
    def test_four_shards_reproduce_time_sliced_loop(self, setup, router):
        """Load-independent routing: the event queue changes nothing.

        The stream is materialised once and shared (session-affinity
        hashes request ids, which advance a process-global counter on
        every fresh materialisation).
        """
        backend, workload, policy, slo, rate = setup
        stream = PoissonProcess(rate).generate(
            workload, count=NUM_REQUESTS, seed=SEED
        )
        event = make_sharded(setup, 4, router=router).run(list(stream))
        sliced = make_sharded(setup, 4, router=router).run_time_sliced(
            list(stream)
        )
        assert timeline(event) == timeline(sliced)
        assert event.makespan == sliced.makespan
        assert event.report == sliced.report
        assert event.as_row() == sliced.as_row()

    def test_four_shards_chunked_prefill_reproduces_time_sliced_loop(self, setup):
        system = make_sharded(setup, 4, chunk_prefill_tokens=96)
        event = system.run(
            PoissonProcess(rate=setup[4]), count=NUM_REQUESTS, seed=SEED
        )
        sliced = system.run_time_sliced(
            PoissonProcess(rate=setup[4]), count=NUM_REQUESTS, seed=SEED
        )
        assert timeline(event) == timeline(sliced)
        assert event.report == sliced.report

    def test_event_runs_are_deterministic(self, setup):
        first = make_sharded(setup, 2, router="least-loaded").run(
            PoissonProcess(rate=setup[4]), count=NUM_REQUESTS, seed=SEED
        )
        second = make_sharded(setup, 2, router="least-loaded").run(
            PoissonProcess(rate=setup[4]), count=NUM_REQUESTS, seed=SEED
        )
        assert timeline(first) == timeline(second)
        assert first.report == second.report


class TestFixedOrderingBug:
    def test_router_sees_pre_completion_load_mid_step(self, setup):
        """An arrival mid-step must not observe the step's retirements.

        The time-sliced loop ran the straddling step to completion before
        routing, so a request retiring at the step's end vanished from the
        load signal of an arrival that landed *mid*-step.  The event loop
        routes at the arrival's true instant.
        """
        backend, workload, policy, slo, rate = setup
        # Probe: one request, gen_len 2 -> one prefill step + one decode
        # step; the request retires at the decode step's end.  A lone
        # request on shard 0 follows exactly the single-engine timeline,
        # which exposes its steps.
        probe_stream = [TimedRequest(Request(input_len=64, generation_len=2), 0.0)]
        probe = ServingSystem(backend, workload, policy=policy, slo=slo).run(
            probe_stream
        )
        decode = probe.steps[-1]
        assert decode.kind == "decode"
        mid_decode = decode.start + decode.duration / 2

        stream = [
            TimedRequest(Request(input_len=64, generation_len=2), 0.0),
            TimedRequest(Request(input_len=64, generation_len=2), mid_decode),
        ]
        event = make_sharded(setup, 2, router="least-loaded").run(list(stream))
        sliced = make_sharded(setup, 2, router="least-loaded").run_time_sliced(
            list(stream)
        )
        # Event loop: shard 0 still holds the decoding request at the
        # arrival instant, so least-loaded picks the empty shard 1.
        assert event.requests[1].shard_id == 1
        # Time-sliced loop: shard 0's clock overshot the arrival, the
        # request already retired, and the tie broke back to shard 0.
        assert sliced.requests[1].shard_id == 0

    def test_empty_core_list_rejected(self):
        with pytest.raises(SimulationError):
            ServingEventLoop([], lambda sr, cores: 0)


class TestEventGranularStepping:
    @pytest.fixture()
    def core(self, setup):
        backend, workload, policy, slo, rate = setup
        step_model = EngineStepModel(backend, workload, policy)
        return EngineCore(
            backend=backend,
            workload=workload,
            policy=policy,
            step_model=step_model,
        )

    def offer(self, core, arrival_time, input_len=64, generation_len=4):
        from repro.serving.queue import ServingRequest

        serving_request = ServingRequest(
            request=Request(input_len=input_len, generation_len=generation_len),
            arrival_time=arrival_time,
        )
        assert core.offer(serving_request)
        return serving_request

    def test_begin_returns_completion_and_complete_applies_it(self, core):
        self.offer(core, 1.0)
        assert core.now == 1.0
        completion = core.begin_step()
        assert completion is not None and completion > 1.0
        assert core.step_in_flight
        assert core.now == 1.0  # clock moves only at completion
        assert core.load() == 1  # in-flight chunk still counts as load
        assert core.has_work()
        kind = core.complete_step()
        assert kind == "prefill"
        assert core.now == completion
        assert not core.step_in_flight
        assert len(core.running) == 1

    def test_double_begin_and_orphan_complete_raise(self, core):
        self.offer(core, 0.0)
        core.begin_step()
        with pytest.raises(SimulationError):
            core.begin_step()
        core.complete_step()
        with pytest.raises(SimulationError):
            core.complete_step()

    def test_begin_on_empty_engine_is_idle(self, core):
        assert core.begin_step() is None
        assert not core.step_in_flight

    def test_arrival_during_flight_waits_for_next_decision(self, core):
        self.offer(core, 0.0)
        completion = core.begin_step()
        mid = self.offer(core, completion / 2)
        # A busy engine queues the arrival without touching its clock.
        assert core.now == 0.0
        assert core.load() == 2
        core.complete_step()
        assert mid.state.name == "QUEUED"
        core.begin_step()
        core.complete_step()
        assert mid.first_token_time is not None
