"""Fault injection, crash recovery and graceful degradation.

Covers the PR's robustness acceptance criteria at tier 1:

* an **empty** :class:`FaultSchedule` attached to a run reproduces the
  no-injector timeline bit-for-bit (exact and streaming modes, unified
  and disaggregated);
* crash teardown invariants: a crashed shard frees all resident bytes,
  refcounts never go negative, no dangling ``prefix_index`` entries
  survive, and every dropped request gets exactly one terminal record;
* request resilience: deadline timeouts, capped-backoff retries that
  preserve session identity, predictive admission shedding;
* mid-transfer disagg crashes release the held source reservation
  exactly once (target-dies and source-dies variants);
* terminal outcome codes surface per-class drop counts in reports.
"""

import pytest

from repro.cluster.spec import ClusterSpec, DeviceSpec, GPULinkSpec
from repro.experiments.serving_sweep import offline_capacity
from repro.serving import (
    EngineCore,
    PoissonProcess,
    ShardedServingSystem,
    default_slo,
)
from repro.serving.event_loop import ServingEventLoop
from repro.serving.faults import (
    FaultEvent,
    FaultInjector,
    FaultSchedule,
    ResiliencePolicy,
)
from repro.serving.queue import RequestState, outcome_code_for
from repro.serving.router import ShardRouter
from repro.serving.sharded import _DisaggController
from repro.systems import MoELightningSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import chat

NUM_REQUESTS = 36
SEED = 0


@pytest.fixture(scope="module")
def setup(mixtral, t4_node):
    workload = chat(
        generation_len=6,
        num_requests=NUM_REQUESTS,
        turns_per_session=3,
        system_prompt_len=64,
        user_turn_len=32,
    )
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    rate = 4 * 0.5 * offline_capacity(backend, workload, policy)
    return backend, workload, policy, slo, rate


def make_system(setup, **kwargs):
    backend, workload, policy, slo, rate = setup
    kwargs.setdefault("num_shards", 4)
    kwargs.setdefault("router", "least-loaded")
    kwargs.setdefault("prefix_cache", True)
    return ShardedServingSystem(
        backend, workload, policy=policy, slo=slo, **kwargs
    )


def run_system(setup, **kwargs):
    _, _, _, _, rate = setup
    count = kwargs.pop("count", NUM_REQUESTS)
    seed = kwargs.pop("seed", SEED)
    return make_system(setup, **kwargs).run(
        PoissonProcess(rate), count=count, seed=seed
    )


def timeline(result):
    # Request ids come from a process-global counter, so identity across
    # two runs of the same seeded stream is positional.
    return [
        (
            sr.attempt,
            sr.arrival_time,
            sr.state,
            sr.shard_id,
            sr.outcome_code,
            sr.first_token_time,
            sr.finish_time,
            sr.tokens_cached,
        )
        for sr in result.requests
    ]


def horizon_of(result):
    return max(sr.arrival_time for sr in result.requests)


def assert_store_invariants(core):
    """Refcounts non-negative, index non-dangling, bytes conserved."""
    store = core.admission.kv_cache.block_store
    if store is None:
        return
    for block in store.blocks.values():
        assert block.ref_count >= 0
    for block_hash, block_id in store.prefix_index.items():
        assert block_id in store.blocks
        assert store.blocks[block_id].block_hash == block_hash
    cpu, gpu = store.bytes_in_use()
    assert cpu == pytest.approx(
        store.num_blocks * store._block_cpu_pages * store.cpu_pool.page_bytes
    )


# ----------------------------------------------------------------------
# Schedule and policy validation
# ----------------------------------------------------------------------
class TestFaultScheduleValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent("meteor", 1.0, shard=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="must be >= 0"):
            FaultEvent("crash", -1.0, shard=0)

    def test_crash_needs_shard(self):
        with pytest.raises(ConfigurationError, match="need a shard id"):
            FaultEvent("crash", 1.0)

    def test_slowdown_factor_must_slow(self):
        with pytest.raises(ConfigurationError, match="factor"):
            FaultEvent("straggle", 1.0, shard=0, duration=1.0, factor=0.5)

    def test_double_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="already down"):
            FaultSchedule(
                (
                    FaultEvent("crash", 1.0, shard=0),
                    FaultEvent("crash", 2.0, shard=0),
                )
            )

    def test_recover_without_crash_rejected(self):
        with pytest.raises(ConfigurationError, match="without a preceding"):
            FaultSchedule((FaultEvent("recover", 1.0, shard=0),))

    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            (
                FaultEvent("crash", 5.0, shard=1),
                FaultEvent("crash", 2.0, shard=0),
            )
        )
        assert [e.time for e in schedule.events] == [2.0, 5.0]

    def test_transient_crash_recover_must_follow(self):
        with pytest.raises(ConfigurationError, match="precedes the crash"):
            FaultSchedule.transient_crash(0, at=5.0, recover_at=1.0)

    def test_pattern_constructors_validate(self):
        assert len(FaultSchedule.transient_crash(0, at=1.0)) == 1
        assert len(FaultSchedule.correlated([0, 1], at=1.0, recover_at=2.0)) == 4
        rolling = FaultSchedule.rolling_restart(
            [0, 1, 2], start=1.0, interval=2.0, downtime=0.5
        )
        assert len(rolling) == 6

    def test_random_schedule_is_seeded_and_valid(self):
        a = FaultSchedule.random(4, horizon=100.0, seed=3, num_crashes=4)
        b = FaultSchedule.random(4, horizon=100.0, seed=3, num_crashes=4)
        assert a == b
        assert FaultSchedule.random(4, horizon=100.0, seed=4) != a

    def test_targets_outside_cluster_rejected(self, setup):
        with pytest.raises(ConfigurationError, match="outside"):
            make_system(
                setup,
                num_shards=2,
                faults=FaultSchedule.transient_crash(5, at=1.0),
            )


class TestResiliencePolicyValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            ResiliencePolicy(max_retries=-1)

    def test_unknown_retry_code_rejected(self):
        with pytest.raises(ConfigurationError, match="retry_on"):
            ResiliencePolicy(retry_on=("queue-full",))

    def test_backoff_doubles_and_caps(self):
        policy = ResiliencePolicy(
            max_retries=8, retry_backoff=1.0, backoff_cap=5.0
        )
        assert [policy.backoff(k) for k in range(4)] == [1.0, 2.0, 4.0, 5.0]


# ----------------------------------------------------------------------
# Determinism: empty schedule is bit-for-bit the no-injector run
# ----------------------------------------------------------------------
class TestEmptyScheduleDeterminism:
    @pytest.mark.parametrize("router", ["least-loaded", "cache-aware"])
    def test_exact_mode_identical(self, setup, router):
        plain = run_system(setup, router=router)
        injected = run_system(
            setup, router=router, faults=FaultSchedule.empty()
        )
        assert timeline(injected) == timeline(plain)
        assert injected.makespan == plain.makespan
        assert injected.report.as_row() == plain.report.as_row()
        assert injected.admission_stats == plain.admission_stats
        assert injected.fault_stats == {
            "crashes": 0,
            "recoveries": 0,
            "retries": 0,
            "kv_bytes_lost": 0.0,
            "blocks_lost": 0,
            "unavailability_s": 0.0,
        }

    def test_streaming_mode_identical(self, setup):
        plain = run_system(setup, store_samples=False)
        injected = run_system(
            setup, store_samples=False, faults=FaultSchedule.empty()
        )
        assert injected.makespan == plain.makespan
        assert injected.report.as_row() == plain.report.as_row()

    def test_disagg_identical(self, setup):
        plain = run_system(setup, disaggregated=True)
        injected = run_system(
            setup, disaggregated=True, faults=FaultSchedule.empty()
        )
        assert timeline(injected) == timeline(plain)
        assert injected.makespan == plain.makespan


# ----------------------------------------------------------------------
# Crash teardown and recovery
# ----------------------------------------------------------------------
class TestCrashTeardown:
    def test_permanent_crash_accounting(self, setup):
        base = run_system(setup)
        horizon = horizon_of(base)
        result = run_system(
            setup, faults=FaultSchedule.transient_crash(1, at=0.3 * horizon)
        )
        report = result.report
        assert report.num_offered == NUM_REQUESTS
        assert report.num_completed + report.num_rejected == NUM_REQUESTS
        assert report.outcomes.get("crash", 0) > 0
        assert result.fault_stats["crashes"] == 1
        assert result.fault_stats["recoveries"] == 0
        assert result.fault_stats["kv_bytes_lost"] > 0

    def test_no_arrivals_on_dead_shard(self, setup):
        base = run_system(setup)
        horizon = horizon_of(base)
        crash_at = 0.3 * horizon
        result = run_system(
            setup, faults=FaultSchedule.transient_crash(1, at=crash_at)
        )
        for sr in result.requests:
            if sr.arrival_time > crash_at:
                assert sr.shard_id != 1

    def test_recovery_serves_again(self, setup):
        base = run_system(setup)
        horizon = horizon_of(base)
        crash_at, recover_at, load_time = (
            0.25 * horizon,
            0.4 * horizon,
            0.05 * horizon,
        )
        result = run_system(
            setup,
            faults=FaultSchedule.transient_crash(
                1, at=crash_at, recover_at=recover_at, load_time=load_time
            ),
        )
        assert result.fault_stats["crashes"] == 1
        assert result.fault_stats["recoveries"] == 1
        ready_at = recover_at + load_time
        assert result.fault_stats["unavailability_s"] == pytest.approx(
            ready_at - crash_at
        )
        served_after = [
            sr
            for sr in result.requests
            if sr.shard_id == 1
            and sr.arrival_time > ready_at
            and sr.state is RequestState.FINISHED
        ]
        assert served_after, "the recovered shard never served again"
        # No first token on the recovered shard before its ready instant
        # plus the crash window (mid-stream DeviceSpec.ready_at semantics).
        for sr in result.requests:
            if sr.shard_id == 1 and sr.arrival_time > crash_at:
                assert sr.first_token_time is None or (
                    sr.first_token_time > ready_at
                )

    def test_crash_teardown_frees_store(self, setup):
        """Drive cores directly and inspect the crashed shard's store."""
        sharded = make_system(setup)
        _, _, _, _, rate = setup
        records = sharded._materialize(
            PoissonProcess(rate), NUM_REQUESTS, SEED
        )
        horizon = max(sr.arrival_time for sr in records)
        cores = sharded._make_cores()
        router_fn = sharded._incremental_route_fn(
            ShardRouter(4, "least-loaded"), cores
        )
        injector = FaultInjector(
            cores, FaultSchedule.transient_crash(2, at=0.4 * horizon)
        )
        route = injector.wrap_route(router_fn)
        injector.set_route(route)
        loop = ServingEventLoop(cores, route)
        injector.attach(loop)
        loop.run(records)
        crashed = cores[2]
        assert crashed.crash_dropped > 0
        assert crashed.admission.kv_cache.sequences == {}
        store = crashed.admission.kv_cache.block_store
        assert store.num_blocks == 0
        assert store.bytes_in_use() == (0.0, 0.0)
        assert store.prefix_index == {}
        assert store.cpu_pool.used_pages == 0
        assert store.crash_drops > 0
        for core in cores:
            assert_store_invariants(core)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_chaos_invariants(self, setup, seed):
        """Seeded random crash/recover timelines keep every invariant."""
        base = run_system(setup, seed=seed)
        horizon = horizon_of(base)
        schedule = FaultSchedule.random(
            4, horizon=horizon, seed=seed, num_crashes=3
        )
        result = run_system(
            setup,
            seed=seed,
            faults=schedule,
            resilience=ResiliencePolicy(max_retries=1, retry_backoff=0.2),
        )
        report = result.report
        assert report.num_completed + report.num_rejected == report.num_offered
        assert report.num_offered >= NUM_REQUESTS
        assert sum(report.outcomes.values()) == report.num_rejected
        for sr in result.requests:
            assert sr.state in (RequestState.FINISHED, RequestState.REJECTED)
            if sr.state is RequestState.REJECTED:
                assert sr.outcome_code is not None


# ----------------------------------------------------------------------
# Request resilience: retries, deadlines, shedding
# ----------------------------------------------------------------------
class TestRetries:
    def test_retries_preserve_session_identity(self, setup):
        base = run_system(setup)
        horizon = horizon_of(base)
        schedule = FaultSchedule.transient_crash(
            1, at=0.3 * horizon, recover_at=0.5 * horizon
        )
        no_retry = run_system(setup, faults=schedule)
        retry = run_system(
            setup,
            faults=schedule,
            resilience=ResiliencePolicy(max_retries=2, retry_backoff=0.2),
        )
        assert retry.report.num_retries > 0
        assert retry.fault_stats["retries"] == retry.report.num_retries
        assert retry.report.num_completed > no_retry.report.num_completed
        originals = {
            id(sr.request) for sr in retry.requests if sr.attempt == 0
        }
        for sr in retry.requests:
            if sr.attempt:
                # The retry carries the same underlying Request object, so
                # session identity and the prefix hash chain survive.
                assert id(sr.request) in originals
                assert sr.arrival_time > 0.3 * horizon

    def test_retry_attempts_are_capped(self, setup):
        base = run_system(setup)
        horizon = horizon_of(base)
        result = run_system(
            setup,
            faults=FaultSchedule.correlated(
                [0, 1, 2, 3], at=0.3 * horizon
            ),
            resilience=ResiliencePolicy(max_retries=2, retry_backoff=0.2),
        )
        # The whole cluster stays dark: every drop retries until the cap.
        assert all(sr.attempt <= 2 for sr in result.requests)
        assert (
            result.report.num_completed + result.report.num_rejected
            == result.report.num_offered
        )


class TestDeadlineTimeout:
    def test_queued_requests_time_out(self, setup):
        backend, workload, policy, slo, rate = setup
        sharded = make_system(
            setup,
            num_shards=2,
            resilience=ResiliencePolicy(deadline=2.0),
        )
        result = sharded.run(
            PoissonProcess(8 * rate), count=NUM_REQUESTS, seed=SEED
        )
        report = result.report
        assert report.outcomes.get("timeout", 0) > 0
        assert report.as_row()["drop_timeout"] == report.outcomes["timeout"]
        assert report.num_completed + report.num_rejected == NUM_REQUESTS
        for sr in result.requests:
            if sr.outcome_code == "timeout":
                assert sr.finish_time - sr.arrival_time > 2.0


class TestShedding:
    def test_overload_sheds_at_the_door(self, setup):
        backend, workload, policy, slo, rate = setup
        sharded = make_system(
            setup,
            num_shards=2,
            resilience=ResiliencePolicy(shed=True, shed_ttft_factor=0.5),
        )
        result = sharded.run(
            PoissonProcess(8 * rate), count=NUM_REQUESTS, seed=SEED
        )
        report = result.report
        assert report.outcomes.get("shed", 0) > 0
        assert report.num_completed + report.num_rejected == NUM_REQUESTS
        # Sheds are judged at arrival: the request never waits.
        for sr in result.requests:
            if sr.outcome_code == "shed":
                assert sr.finish_time == sr.arrival_time

    def test_shed_needs_slo(self, setup):
        # The facades always derive a default SLO, so the guard only
        # trips on direct EngineCore construction without one.
        backend, workload, policy, _, _ = setup
        sharded = make_system(setup, num_shards=2)
        cores = sharded._make_cores()
        with pytest.raises(ConfigurationError, match="SLO"):
            EngineCore(
                backend,
                workload,
                policy,
                cores[0].step_model,
                resilience=ResiliencePolicy(shed=True),
                slo=None,
            )


# ----------------------------------------------------------------------
# Performance faults: stragglers and link degradation
# ----------------------------------------------------------------------
class TestStraggler:
    def test_straggling_shard_slows_the_run(self, setup):
        base = run_system(setup, num_shards=2)
        horizon = horizon_of(base)
        slowed = run_system(
            setup,
            num_shards=2,
            faults=FaultSchedule(
                (
                    FaultEvent(
                        "straggle",
                        0.0,
                        shard=0,
                        duration=10 * horizon,
                        factor=4.0,
                    ),
                )
            ),
        )
        assert slowed.makespan > base.makespan
        assert slowed.report.mean_ttft > base.report.mean_ttft


class TestLinkDegrade:
    def test_degraded_link_stretches_migrations(self, setup, t4_node):
        slow_link = GPULinkSpec(name="slow", bandwidth=2e6, latency=0.05)
        cluster = ClusterSpec.of_devices(
            [
                DeviceSpec(
                    device_id=i,
                    node=t4_node,
                    role="prefill" if i < 2 else "decode",
                )
                for i in range(4)
            ],
            link=slow_link,
        )
        base = run_system(setup, num_shards=None, cluster=cluster)
        horizon = horizon_of(base)
        degraded = run_system(
            setup,
            num_shards=None,
            cluster=cluster,
            faults=FaultSchedule(
                (
                    FaultEvent(
                        "link-degrade",
                        0.0,
                        duration=10 * horizon,
                        factor=8.0,
                    ),
                )
            ),
        )
        assert degraded.makespan > base.makespan


# ----------------------------------------------------------------------
# Mid-transfer crashes (the source-reservation leak regression)
# ----------------------------------------------------------------------
def _disagg_internals(setup, t4_node, faults=None):
    """The exact `_run_disagg` wiring, with cores exposed for inspection."""
    _, _, _, _, rate = setup
    slow_link = GPULinkSpec(name="slow", bandwidth=2e6, latency=1.0)
    cluster = ClusterSpec.of_devices(
        [
            DeviceSpec(
                device_id=i,
                node=t4_node,
                role="prefill" if i < 2 else "decode",
            )
            for i in range(4)
        ],
        link=slow_link,
    )
    sharded = make_system(setup, num_shards=None, cluster=cluster)
    records = sharded._materialize(PoissonProcess(rate), NUM_REQUESTS, SEED)
    cores = sharded._make_cores()
    controller = _DisaggController(sharded, cores)
    injector = None
    route = controller.route
    if faults is not None:
        injector = FaultInjector(cores, faults)
        injector.add_ready_view(controller.router.ready_at)
        injector.on_crash_drops.append(controller.on_crash_drops)
        injector.set_route(route)
        controller.injector = injector
        for core in cores:
            core.on_fail = injector.handle_failure
    loop = ServingEventLoop(cores, route)
    controller.attach(loop)
    if injector is not None:
        injector.attach(loop, record_sink=records.append)
    loop.run(records)
    return records, cores, controller


@pytest.fixture(scope="module")
def first_transfer(setup, t4_node):
    """(land_time, source_shard, target_shard) of the first fault-free
    KV transfer on the slow-link disagg cluster.

    The link's 1-second latency guarantees every transfer is in flight for
    at least a second, so ``land_time - 0.5`` is strictly inside the
    flight window — and because injected faults cannot perturb the
    timeline *before* they fire, a crash at that instant in a faulted
    re-run catches the very same transfer mid-flight.
    """
    landings = []
    original = _DisaggController._landing

    def spy(self, serving_request, source, target, land_time):
        landings.append((land_time, source.shard_id, target.shard_id))
        return original(self, serving_request, source, target, land_time)

    _DisaggController._landing = spy
    try:
        _, cores, controller = _disagg_internals(setup, t4_node)
    finally:
        _DisaggController._landing = original
    assert controller.transfers > 0 and landings
    return min(landings)


class TestMidTransferCrash:
    def test_target_crash_releases_source_exactly_once(
        self, setup, t4_node, first_transfer
    ):
        land_time, _source_id, target_id = first_transfer
        faults = FaultSchedule.transient_crash(target_id, at=land_time - 0.5)
        records, cores, controller = _disagg_internals(
            setup, t4_node, faults=faults
        )
        assert controller.transfers_lost >= 1
        lost = [
            sr
            for sr in records
            if sr.outcome_code == "crash"
            and sr.reject_reason == "migration lost to crash"
        ]
        assert lost
        for sr in records:
            assert sr.state in (RequestState.FINISHED, RequestState.REJECTED)
        for core in cores:
            # The source's held reservation was released exactly once: no
            # live sequences anywhere, no negative refcounts, no dangling
            # index entries (a double release would go negative; a leak
            # would leave the migrated sequence's KV held forever).
            assert core.admission.kv_cache.sequences == {}
            assert_store_invariants(core)
            store = core.admission.kv_cache.block_store
            cpu_live, _ = store.bytes_in_use(live_only=True)
            assert cpu_live == 0.0

    def test_source_crash_does_not_double_release(
        self, setup, t4_node, first_transfer
    ):
        land_time, source_id, _target_id = first_transfer
        faults = FaultSchedule.transient_crash(source_id, at=land_time - 0.5)
        records, cores, controller = _disagg_internals(
            setup, t4_node, faults=faults
        )
        assert controller.transfers_lost >= 1
        source_store = cores[source_id].admission.kv_cache.block_store
        assert source_store.num_blocks == 0
        assert source_store.bytes_in_use() == (0.0, 0.0)
        for sr in records:
            assert sr.state in (RequestState.FINISHED, RequestState.REJECTED)
        for core in cores:
            assert core.admission.kv_cache.sequences == {}
            assert_store_invariants(core)


# ----------------------------------------------------------------------
# Terminal outcome codes
# ----------------------------------------------------------------------
class TestOutcomeCodes:
    def test_reason_mapping(self):
        assert outcome_code_for("queue full") == "queue-full"
        assert (
            outcome_code_for("migration target over capacity")
            == "migration-capacity"
        )
        assert outcome_code_for("prompt exceeds capacity") == "oversized"
        assert outcome_code_for("mystery") == "other"

    def test_queue_full_surfaces_in_report(self, setup):
        _, _, _, _, rate = setup
        sharded = make_system(setup, num_shards=2, max_queue_depth=1)
        result = sharded.run(
            PoissonProcess(8 * rate), count=NUM_REQUESTS, seed=SEED
        )
        report = result.report
        assert report.outcomes.get("queue-full", 0) > 0
        row = result.as_row()
        assert row["drop_queue_full"] == report.outcomes["queue-full"]
        assert sum(report.outcomes.values()) == report.num_rejected

    def test_streaming_and_exact_outcomes_agree(self, setup):
        _, _, _, _, rate = setup
        base = run_system(setup)
        horizon = horizon_of(base)
        schedule = FaultSchedule.transient_crash(1, at=0.3 * horizon)
        exact = run_system(setup, faults=schedule)
        streaming = run_system(
            setup, faults=schedule, store_samples=False
        )
        assert streaming.report.outcomes == exact.report.outcomes
        assert streaming.report.num_retries == exact.report.num_retries
