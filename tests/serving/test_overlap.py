"""Overlapped prefill/decode streams: the win, and off == serialized.

The acceptance bar for the overlap switch:

* ``overlap=on`` yields strictly higher SLO-goodput and strictly lower
  mean TPOT than ``overlap=off`` on a loaded chat workload under a
  streaming TPOT SLO;
* ``overlap=off`` reproduces the serialized timeline bit-for-bit (no
  mixed steps without chunked prefill, zero overlap fraction);
* per-step stream accounting is exact: a mixed step lasts as long as its
  slower half and overlaps for the faster half.
"""

import pytest

from repro.experiments.overlap_sweep import run_overlap_sweep
from repro.experiments.serving_sweep import offline_capacity
from repro.serving import (
    PoissonProcess,
    ServingSystem,
    ShardedServingSystem,
    default_slo,
)
from repro.systems import MoELightningSystem
from repro.workloads import chat

NUM_REQUESTS = 48
SEED = 0


@pytest.fixture(scope="module")
def setup(mixtral, t4_node):
    workload = chat(generation_len=32, num_requests=NUM_REQUESTS)
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    # Streaming SLO: 20% headroom over the unloaded decode step, the
    # regime the overlap argument is about (each serialized prefill
    # inserts a whole weight-streaming pass into every token gap).
    slo = default_slo(backend, workload, policy, tpot_factor=1.2)
    rate = 4.0 * offline_capacity(backend, workload, policy)
    return backend, workload, policy, slo, rate


def run_single(setup, overlap, **kwargs):
    backend, workload, policy, slo, rate = setup
    serving = ServingSystem(
        backend, workload, policy=policy, slo=slo, overlap=overlap, **kwargs
    )
    return serving.run(PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED)


class TestOverlapWins:
    """The ISSUE's acceptance criterion, asserted at tier 1."""

    def test_overlap_on_beats_off_on_loaded_chat(self, setup):
        off = run_single(setup, overlap=False)
        on = run_single(setup, overlap=True)
        assert off.report.num_offered == on.report.num_offered

        # Strictly higher SLO-goodput, strictly lower mean TPOT.
        assert on.report.goodput > off.report.goodput
        assert on.report.mean_tpot < off.report.mean_tpot
        # The serialized engine never overlaps; the overlapped one does.
        assert off.overlap_fraction == 0.0
        assert 0.0 < on.overlap_fraction <= 1.0

    def test_overlap_wins_on_multiple_shards_too(self, setup):
        backend, workload, policy, slo, rate = setup
        results = {}
        for overlap in (False, True):
            sharded = ShardedServingSystem(
                backend,
                workload,
                num_shards=2,
                policy=policy,
                slo=slo,
                overlap=overlap,
            )
            results[overlap] = sharded.run(
                PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED
            )
        assert results[True].report.goodput > results[False].report.goodput
        assert results[True].report.mean_tpot < results[False].report.mean_tpot
        assert results[True].overlap_fraction > 0.0
        row = results[True].as_row()
        assert 0.0 < row["overlap_fraction"] <= 1.0
        assert row["decode_busy_s"] > 0 and row["prefill_busy_s"] > 0

    def test_overlap_sweep_rows_capture_the_win(self, setup):
        rows = run_overlap_sweep(
            load_factors=(4.0,),
            num_requests=24,
            generation_len=16,
            seed=SEED,
        )
        assert [row["overlap"] for row in rows] == ["off", "on"]
        off_row, on_row = rows
        assert on_row["goodput"] > off_row["goodput"]
        assert on_row["mean_tpot"] < off_row["mean_tpot"]
        assert on_row["overlap_fraction"] > 0.0
        assert off_row["overlap_fraction"] == 0.0


class TestOverlapOffIsSerialized:
    def test_off_produces_no_mixed_steps(self, setup):
        off = run_single(setup, overlap=False)
        assert {step.kind for step in off.steps} <= {"prefill", "decode"}
        assert all(step.overlapped_time == 0.0 for step in off.steps)

    def test_on_generalises_mixed_into_the_steady_state(self, setup):
        on = run_single(setup, overlap=True)
        mixed = [step for step in on.steps if step.kind == "mixed"]
        assert mixed, "a loaded overlapped run must fuse prefill into decode"
        for step in mixed:
            assert step.duration == pytest.approx(
                max(step.decode_time, step.prefill_time)
            )
            assert step.overlapped_time == pytest.approx(
                min(step.decode_time, step.prefill_time)
            )
        for step in on.steps:
            if step.kind == "decode":
                assert step.prefill_time == 0.0
            if step.kind == "prefill":
                assert step.decode_time == 0.0

    def test_steps_still_tile_the_timeline_under_overlap(self, setup):
        """Streams overlap *within* a step; steps never overlap each other."""
        on = run_single(setup, overlap=True)
        for earlier, later in zip(on.steps, on.steps[1:]):
            assert later.start >= earlier.end - 1e-9

    def test_first_token_lands_when_the_prefill_stream_finishes(self, setup):
        """Under overlap a mixed step's prompts get their first token at
        ``start + prefill_time``, not at the (possibly later) step end."""
        on = run_single(setup, overlap=True)
        mixed_windows = [
            (step.start + step.prefill_time, step)
            for step in on.steps
            if step.kind == "mixed"
        ]
        stamp_times = {
            round(at, 12) for at, _ in mixed_windows
        }
        stamped_in_mixed = [
            sr
            for sr in on.requests
            if sr.first_token_time is not None
            and round(sr.first_token_time, 12) in stamp_times
        ]
        assert stamped_in_mixed, "some prompts must finish inside mixed steps"
        # Causality holds even when the stamp is mid-step.
        for sr in on.requests:
            if sr.first_token_time is None:
                continue
            assert sr.admit_time <= sr.first_token_time
            if sr.finish_time is not None:
                assert sr.finish_time >= sr.first_token_time


class TestOverlapComposesWithChunkedPrefill:
    def test_chunked_runs_complete_under_both_settings(self, setup):
        off = run_single(setup, overlap=False, chunk_prefill_tokens=96)
        on = run_single(setup, overlap=True, chunk_prefill_tokens=96)
        for result in (off, on):
            assert (
                result.report.num_completed + result.report.num_rejected
                == NUM_REQUESTS
            )
        # Chunked prefill already rides decode steps, so both settings
        # overlap; the switch only moves first-token stamps to the
        # prefill stream's completion, which cannot hurt TTFT.
        assert on.report.mean_ttft <= off.report.mean_ttft
        assert on.overlap_fraction > 0.0
        assert off.overlap_fraction > 0.0
