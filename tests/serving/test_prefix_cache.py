"""Prefix-cache serving: cache-on dominates, cache-off is unchanged.

The acceptance bar for the shared block store refactor:

* on the same multi-turn arrival stream, prefix-cache-on yields strictly
  higher SLO-goodput and strictly lower mean TTFT than cache-off;
* with the cache off — or on but with zero hits — per-request timestamps
  are bit-for-bit what the per-sequence accounting produced.
"""

import pytest

from repro.hardware import get_hardware
from repro.models import get_model
from repro.serving import PoissonProcess, ServingSystem, TimedRequest, default_slo
from repro.serving.sharded import ShardedServingSystem
from repro.systems import MoELightningSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import Request, chat, generate_chat_requests

NUM_REQUESTS = 24
GENERATION_LEN = 8
CHUNK_TOKENS = 96
SEED = 0


@pytest.fixture(scope="module")
def backend():
    return MoELightningSystem(get_model("mixtral-8x7b"), get_hardware("1xT4"))


@pytest.fixture(scope="module")
def workload():
    return chat(
        generation_len=GENERATION_LEN,
        num_requests=NUM_REQUESTS,
        turns_per_session=4,
    )


def run_chat(backend, workload, prefix_cache, load_factor=2.0, **kwargs):
    from repro.experiments.serving_sweep import offline_capacity

    policy = backend.select_policy(workload)
    slo = kwargs.pop("slo", None) or default_slo(backend, workload, policy)
    serving = ServingSystem(
        backend,
        workload,
        policy=policy,
        slo=slo,
        chunk_prefill_tokens=kwargs.pop("chunk_prefill_tokens", CHUNK_TOKENS),
        prefix_cache=prefix_cache,
        **kwargs,
    )
    rate = load_factor * offline_capacity(backend, workload, policy)
    return serving.run(PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED)


class TestCacheOnDominates:
    """The ISSUE's acceptance criterion, asserted at tier 1."""

    def test_cache_on_beats_cache_off_on_the_same_stream(self, backend, workload):
        off = run_chat(backend, workload, prefix_cache=False)
        on = run_chat(backend, workload, prefix_cache=True)

        # Same stream, same completions — only the cache differs.
        assert off.report.num_offered == on.report.num_offered
        assert on.report.hit_rate > 0.5
        assert on.report.cached_token_fraction > 0.3
        assert off.report.hit_rate == 0.0

        # Strictly higher SLO-goodput, strictly lower mean TTFT.
        assert on.report.goodput > off.report.goodput
        assert on.report.mean_ttft < off.report.mean_ttft
        # Fewer weight-streaming passes also buy throughput.
        assert on.report.token_throughput > off.report.token_throughput

    def test_hits_see_lower_ttft_than_misses(self, backend, workload):
        on = run_chat(backend, workload, prefix_cache=True)
        assert on.report.cache_hits > 0
        assert 0 < on.report.mean_ttft_hit
        assert on.admission_stats["cache_hits"] == on.report.cache_hits

    def test_cached_tokens_skip_prefill_work(self, backend, workload):
        """Admitted hits carry their cached prefix as already-prefilled."""
        on = run_chat(backend, workload, prefix_cache=True)
        hits = [sr for sr in on.requests if sr.tokens_cached > 0]
        assert hits
        for sr in hits:
            assert sr.tokens_cached < sr.request.effective_input_len
            assert sr.tokens_cached % 16 == 0  # whole blocks only


class TestCacheOffUnchanged:
    """Bit-for-bit equivalence with the per-sequence accounting."""

    def _timeline(self, result):
        # Positional, not by request id: each run materialises fresh Request
        # objects whose ids advance a process-global counter.
        return [
            (index, sr.admit_time, sr.first_token_time, sr.finish_time)
            for index, sr in enumerate(result.requests)
        ]

    def test_zero_hit_stream_matches_cache_off_exactly(self, backend, workload):
        """Unique prompts: the shared store degenerates to today's path."""
        requests = generate_chat_requests(workload, count=NUM_REQUESTS, seed=SEED)
        unique = [
            TimedRequest(
                request=Request(
                    input_len=req.input_len,
                    generation_len=req.generation_len,
                    token_ids=tuple(range(i * 4096, i * 4096 + req.input_len)),
                ),
                arrival_time=0.5 * i,
            )
            for i, req in enumerate(requests)
        ]
        policy = backend.select_policy(workload)
        slo = default_slo(backend, workload, policy)

        results = {}
        for prefix_cache in (False, True):
            serving = ServingSystem(
                backend,
                workload,
                policy=policy,
                slo=slo,
                chunk_prefill_tokens=CHUNK_TOKENS,
                prefix_cache=prefix_cache,
            )
            # Rebuild the stream each run: ServingRequest records are mutated.
            stream = [
                TimedRequest(request=t.request, arrival_time=t.arrival_time)
                for t in unique
            ]
            results[prefix_cache] = serving.run(stream)

        assert results[True].report.hit_rate == 0.0
        assert self._timeline(results[True]) == self._timeline(results[False])
        assert results[True].makespan == results[False].makespan

    def test_tokenless_workloads_run_identically_under_the_flag(
        self, backend, workload
    ):
        """mtbench-style requests carry no token ids: the flag is inert."""
        from repro.workloads import mtbench

        spec = mtbench(generation_len=8, num_requests=16)
        policy = backend.select_policy(spec)
        slo = default_slo(backend, spec, policy)
        timelines = []
        for prefix_cache in (False, True):
            serving = ServingSystem(
                backend, spec, policy=policy, slo=slo, prefix_cache=prefix_cache
            )
            result = serving.run(PoissonProcess(0.5), count=16, seed=SEED)
            timelines.append(self._timeline(result))
        assert timelines[0] == timelines[1]


class TestCacheAwareSharding:
    def test_cache_aware_requires_prefix_cache(self, backend, workload):
        with pytest.raises(ConfigurationError):
            ShardedServingSystem(
                backend, workload, num_shards=2, router="cache-aware"
            )

    def test_cache_aware_keeps_sessions_on_warm_shards(self, backend, workload):
        sharded = ShardedServingSystem(
            backend,
            workload,
            num_shards=2,
            router="cache-aware",
            prefix_cache=True,
            chunk_prefill_tokens=CHUNK_TOKENS,
        )
        result = sharded.run(PoissonProcess(0.2), count=NUM_REQUESTS, seed=SEED)
        assert result.report.num_completed == NUM_REQUESTS
        # Later turns follow their session's cached history: once a session
        # has a warm shard, its follow-ups land there.
        by_session: dict[int, set[int]] = {}
        for sr in result.requests:
            session = sr.request.session_id
            by_session.setdefault(session, set()).add(sr.shard_id)
        sticky = [len(shards) == 1 for shards in by_session.values()]
        assert sum(sticky) >= len(sticky) - 2  # near-perfect affinity
        assert result.report.hit_rate > 0.5


class TestSessionTTL:
    """--session-ttl: idle cached sessions expire; hot ones survive."""

    def test_ttl_requires_prefix_cache(self, backend, workload):
        with pytest.raises(ConfigurationError, match="prefix_cache"):
            ServingSystem(backend, workload, session_ttl=30.0)

    def test_short_ttl_evicts_idle_sessions(self, backend, workload):
        # A slow trickle of arrivals leaves each session idle far longer
        # than the TTL between turns: the cache keeps expiring.
        result = run_chat(
            backend,
            workload,
            prefix_cache=True,
            load_factor=0.25,
            session_ttl=1.0,
        )
        assert result.report.num_completed == NUM_REQUESTS
        assert result.admission_stats["ttl_evictions"] > 0

    def test_generous_ttl_evicts_nothing_and_keeps_hits(self, backend, workload):
        baseline = run_chat(backend, workload, prefix_cache=True)
        generous = run_chat(
            backend, workload, prefix_cache=True, session_ttl=1e9
        )
        assert generous.admission_stats["ttl_evictions"] == 0
        assert "ttl_evictions" not in baseline.admission_stats
        # An infinite-in-practice TTL reproduces the no-TTL hit rate.
        assert generous.report.hit_rate == baseline.report.hit_rate
        assert generous.makespan == baseline.makespan

    def test_eviction_costs_hits_but_not_correctness(self, backend, workload):
        keep = run_chat(backend, workload, prefix_cache=True)
        expire = run_chat(
            backend,
            workload,
            prefix_cache=True,
            load_factor=0.25,
            session_ttl=1.0,
        )
        assert expire.report.num_completed == NUM_REQUESTS
        # Expired prefixes must be re-prefilled: the hit rate can only drop.
        assert expire.report.hit_rate <= keep.report.hit_rate
