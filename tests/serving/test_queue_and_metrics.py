"""Request queue ordering/bounds and latency-metric aggregation."""

import math

import pytest

from repro.serving import SLO, RequestQueue, RequestState, ServingRequest, summarize
from repro.serving.metrics import percentile
from repro.utils.errors import ConfigurationError
from repro.workloads import Request


def make_request(prompt=8, gen=4, arrival=0.0):
    return ServingRequest(
        request=Request(input_len=prompt, generation_len=gen), arrival_time=arrival
    )


class TestRequestQueue:
    def test_fcfs_orders_by_arrival(self):
        queue = RequestQueue(ordering="fcfs")
        late = make_request(prompt=1, arrival=2.0)
        early = make_request(prompt=100, arrival=1.0)
        queue.push(late)
        queue.push(early)
        assert queue.pop() is early
        assert queue.pop() is late

    def test_sjf_orders_by_prompt_length(self):
        queue = RequestQueue(ordering="sjf")
        long = make_request(prompt=100, arrival=1.0)
        short = make_request(prompt=1, arrival=2.0)
        queue.push(long)
        queue.push(short)
        assert queue.pop() is short

    def test_bounded_depth_drops(self):
        queue = RequestQueue(max_depth=2)
        assert queue.push(make_request())
        assert queue.push(make_request())
        assert queue.is_full
        assert not queue.push(make_request())
        queue.pop()
        assert queue.push(make_request())

    def test_pop_empty_raises(self):
        with pytest.raises(ConfigurationError):
            RequestQueue().pop()

    def test_unknown_ordering_rejected(self):
        with pytest.raises(ConfigurationError):
            RequestQueue(ordering="random")

    def test_requeue_restores_head(self):
        queue = RequestQueue(ordering="fcfs")
        first = make_request(arrival=1.0)
        second = make_request(arrival=2.0)
        queue.push(first)
        queue.push(second)
        popped = queue.pop()
        queue.requeue(popped)
        assert queue.peek() is first


class TestRequestLifecycle:
    def test_latency_metrics(self):
        serving_request = make_request(prompt=8, gen=5, arrival=10.0)
        serving_request.mark_running(12.0)
        serving_request.mark_first_token(15.0)
        for _ in range(4):
            serving_request.tokens_decoded += 1
        serving_request.mark_finished(23.0)
        assert serving_request.ttft == pytest.approx(5.0)
        assert serving_request.tpot == pytest.approx(2.0)  # 8s over 4 decode tokens
        assert serving_request.e2e_latency == pytest.approx(13.0)
        assert serving_request.context_len == 8 + 5

    def test_metrics_none_until_finished(self):
        serving_request = make_request()
        assert serving_request.ttft is None
        assert serving_request.tpot is None
        assert serving_request.e2e_latency is None

    def test_single_token_request_has_zero_tpot(self):
        serving_request = make_request(gen=1, arrival=0.0)
        serving_request.mark_running(0.0)
        serving_request.mark_first_token(2.0)
        serving_request.mark_finished(2.0)
        assert serving_request.tpot == 0.0


class TestSummarize:
    def finished(self, arrival, first, finish, gen=5):
        serving_request = make_request(gen=gen, arrival=arrival)
        serving_request.mark_running(arrival)
        serving_request.mark_first_token(first)
        serving_request.tokens_decoded = gen
        serving_request.mark_finished(finish)
        return serving_request

    def test_percentile_matches_numpy(self):
        import numpy as np

        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        assert percentile(values, 50) == pytest.approx(float(np.percentile(values, 50)))

    def test_percentile_empty_raises_unless_defaulted(self):
        with pytest.raises(ValueError, match="empty sample"):
            percentile([], 99)
        assert percentile([], 99, default=0.0) == 0.0
        assert math.isnan(percentile([], 50, default=math.nan))

    def test_counts_and_goodput(self):
        slo = SLO(ttft=2.0, tpot=1.0)
        fast = self.finished(arrival=0.0, first=1.0, finish=4.0)  # tpot 0.75: met
        slow = self.finished(arrival=0.0, first=5.0, finish=30.0)  # ttft 5: missed
        dropped = make_request(arrival=0.0)
        dropped.mark_rejected(0.0, "queue full")
        report = summarize([fast, slow, dropped], makespan=10.0, slo=slo)
        assert report.num_offered == 3
        assert report.num_completed == 2
        assert report.num_rejected == 1
        assert report.slo_met == 1
        assert report.goodput == pytest.approx(0.1)  # 1 SLO-met request / 10 s
        assert report.goodput_fraction == pytest.approx(1 / 3)
        assert report.tokens_generated == 10
        assert report.token_throughput == pytest.approx(1.0)

    def test_empty_run(self):
        report = summarize([], makespan=0.0, slo=SLO(ttft=1.0, tpot=1.0))
        assert report.num_offered == 0
        assert report.goodput_fraction == 0.0
        assert report.token_throughput == 0.0

    def test_rejected_requests_never_count_as_slo_met(self):
        slo = SLO(ttft=100.0, tpot=100.0)
        rejected = make_request(arrival=0.0)
        rejected.mark_rejected(1.0, "oversized")
        report = summarize([rejected], makespan=5.0, slo=slo)
        assert report.slo_met == 0
        assert rejected.state is RequestState.REJECTED
