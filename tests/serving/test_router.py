"""ShardRouter policies: fairness, load sensitivity, affinity, determinism."""

import pytest

from repro.serving.queue import ServingRequest
from repro.serving.router import ROUTER_POLICIES, ShardRouter
from repro.utils.errors import ConfigurationError
from repro.workloads.request import Request


def make_request(request_id: int, session_id: int | None = None) -> ServingRequest:
    return ServingRequest(
        request=Request(
            input_len=32,
            generation_len=8,
            request_id=request_id,
            session_id=session_id,
        ),
        arrival_time=float(request_id),
    )


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        ShardRouter(4, "random")


def test_load_vector_must_match_shards():
    router = ShardRouter(4, "least-loaded")
    with pytest.raises(ConfigurationError):
        router.route(make_request(0), [0, 0])


def test_round_robin_cycles_evenly():
    router = ShardRouter(3, "round-robin")
    shards = [router.route(make_request(i), [0, 0, 0]) for i in range(9)]
    assert shards == [0, 1, 2] * 3
    assert router.assignments == [3, 3, 3]


def test_least_loaded_tracks_load_vector():
    router = ShardRouter(3, "least-loaded")
    assert router.route(make_request(0), [5, 2, 7]) == 1
    assert router.route(make_request(1), [5, 9, 0]) == 2
    # Ties break toward the lowest shard id, deterministically.
    assert router.route(make_request(2), [4, 4, 4]) == 0


def test_session_affinity_is_sticky():
    router = ShardRouter(4, "session-affinity")
    loads = [0, 0, 0, 0]
    first = [router.route(make_request(i, session_id=77), loads) for i in range(5)]
    assert len(set(first)) == 1  # one session, one shard
    other = router.route(make_request(9, session_id=1234), loads)
    assert 0 <= other < 4


def test_session_affinity_spreads_sessions():
    router = ShardRouter(4, "session-affinity")
    loads = [0, 0, 0, 0]
    shards = {
        router.route(make_request(i, session_id=i), loads) for i in range(64)
    }
    assert len(shards) == 4  # consecutive sessions cover every shard


def test_sessionless_traffic_falls_back_to_request_id():
    router = ShardRouter(2, "session-affinity")
    loads = [0, 0]
    a = router.route(make_request(10), loads)
    again = ShardRouter(2, "session-affinity").route(make_request(10), loads)
    assert a == again  # deterministic across router instances


def test_policy_roster_is_stable():
    assert ROUTER_POLICIES == (
        "round-robin",
        "least-loaded",
        "session-affinity",
        "cache-aware",
    )


class TestCacheAwareRouting:
    def test_longest_prefix_wins(self):
        router = ShardRouter(3, "cache-aware")
        shard = router.route(make_request(0), [5, 0, 0], prefix_lens=[64, 0, 16])
        assert shard == 0
        assert router.cache_routed == 1

    def test_cold_prompt_falls_back_to_least_loaded(self):
        router = ShardRouter(3, "cache-aware")
        assert router.route(make_request(0), [4, 1, 2], prefix_lens=[0, 0, 0]) == 1
        assert router.route(make_request(1), [4, 1, 2], prefix_lens=None) == 1
        assert router.cache_routed == 0

    def test_prefix_ties_break_by_load_then_id(self):
        router = ShardRouter(3, "cache-aware")
        assert router.route(make_request(0), [7, 2, 2], prefix_lens=[32, 32, 32]) == 1
        assert router.route(make_request(1), [2, 2, 2], prefix_lens=[0, 32, 32]) == 1

    def test_prefix_vector_must_match_shards(self):
        router = ShardRouter(3, "cache-aware")
        with pytest.raises(ConfigurationError):
            router.route(make_request(0), [0, 0, 0], prefix_lens=[1, 2])
