"""End-to-end serving runs: lifecycle, determinism, scheduling policies."""

import pytest

from repro.serving import (
    DeterministicProcess,
    PoissonProcess,
    RequestState,
    ServingSystem,
    TimedRequest,
    default_slo,
)
from repro.systems import FlexGenSystem, MoELightningSystem
from repro.workloads import Request, mtbench


@pytest.fixture(scope="module")
def workload():
    return mtbench(generation_len=8, num_requests=32)


@pytest.fixture(scope="module")
def backend(mixtral, t4_node):
    return MoELightningSystem(mixtral, t4_node)


@pytest.fixture(scope="module")
def policy(backend, workload):
    return backend.select_policy(workload)


@pytest.fixture(scope="module")
def slo(backend, workload, policy):
    return default_slo(backend, workload, policy)


class TestEndToEnd:
    def test_low_load_completes_everything(self, backend, workload, policy, slo):
        serving = ServingSystem(backend, workload, policy=policy, slo=slo)
        result = serving.run(PoissonProcess(rate=0.2), count=16, seed=0)
        assert result.report.num_offered == 16
        assert result.report.num_completed == 16
        assert result.report.num_rejected == 0
        assert all(r.state is RequestState.FINISHED for r in result.requests)
        assert result.report.ttft[99] > 0
        assert result.report.tpot[99] > 0
        assert result.makespan >= max(r.finish_time for r in result.requests)

    def test_timestamps_are_causally_ordered(self, backend, workload, policy, slo):
        serving = ServingSystem(backend, workload, policy=policy, slo=slo)
        result = serving.run(PoissonProcess(rate=0.5), count=16, seed=1)
        for serving_request in result.requests:
            assert serving_request.admit_time >= serving_request.arrival_time
            assert serving_request.first_token_time > serving_request.admit_time
            assert serving_request.finish_time >= serving_request.first_token_time

    def test_engine_steps_tile_the_timeline(self, backend, workload, policy, slo):
        serving = ServingSystem(backend, workload, policy=policy, slo=slo)
        result = serving.run(PoissonProcess(rate=0.5), count=16, seed=2)
        steps = result.steps
        assert steps, "a non-empty run must execute engine steps"
        assert {step.kind for step in steps} == {"prefill", "decode"}
        for earlier, later in zip(steps, steps[1:]):
            # The engine is a single pipeline: steps never overlap.
            assert later.start >= earlier.end - 1e-9

    def test_tokens_accounted(self, backend, workload, policy, slo):
        serving = ServingSystem(backend, workload, policy=policy, slo=slo)
        result = serving.run(PoissonProcess(rate=0.5), count=12, seed=3)
        expected = sum(r.request.generation_len for r in result.requests)
        assert result.report.tokens_generated == expected


class TestDeterminism:
    def test_identical_seed_identical_metrics(self, backend, workload, policy, slo):
        runs = [
            ServingSystem(backend, workload, policy=policy, slo=slo)
            .run(PoissonProcess(rate=1.0), count=24, seed=99)
            for _ in range(2)
        ]
        assert runs[0].as_row() == runs[1].as_row()
        times_a = [(r.first_token_time, r.finish_time) for r in runs[0].requests]
        times_b = [(r.first_token_time, r.finish_time) for r in runs[1].requests]
        assert times_a == times_b


class TestSchedulingPolicies:
    @pytest.fixture(scope="class")
    def results(self, backend, workload, policy, slo):
        out = {}
        for scheduling in ("fcfs", "prefill-first", "decode-first"):
            serving = ServingSystem(
                backend, workload, policy=policy, scheduling=scheduling, slo=slo
            )
            out[scheduling] = serving.run(PoissonProcess(rate=1.0), count=32, seed=5)
        return out

    def test_prefill_first_minimises_ttft(self, results):
        ttft = {name: res.report.ttft[50] for name, res in results.items()}
        assert ttft["prefill-first"] <= ttft["fcfs"] <= ttft["decode-first"]

    def test_decode_first_minimises_tpot(self, results):
        tpot = {name: res.report.tpot[99] for name, res in results.items()}
        assert tpot["decode-first"] <= tpot["fcfs"]
        assert tpot["decode-first"] <= tpot["prefill-first"]

    def test_all_policies_complete_all_requests(self, results):
        for result in results.values():
            assert result.report.num_completed == result.report.num_offered


class TestOverloadShedding:
    def test_bounded_queue_drops_under_overload(self, backend, workload, policy, slo):
        serving = ServingSystem(
            backend, workload, policy=policy, slo=slo, max_queue_depth=4
        )
        result = serving.run(PoissonProcess(rate=50.0), count=32, seed=6)
        report = result.report
        assert report.num_rejected > 0
        assert report.num_completed + report.num_rejected == report.num_offered
        dropped = [r for r in result.requests if r.state is RequestState.REJECTED]
        assert all(r.reject_reason == "queue full" for r in dropped)
        assert result.admission_stats["dropped_queue_full"] == len(dropped)

    def test_oversized_request_rejected_not_wedged(
        self, backend, workload, policy, slo
    ):
        """A request that can never fit is dropped and the stream continues."""
        serving = ServingSystem(backend, workload, policy=policy, slo=slo)
        stream = [
            TimedRequest(Request(input_len=8, generation_len=8), 0.5),
            TimedRequest(Request(input_len=50_000_000, generation_len=8), 1.0),
            TimedRequest(Request(input_len=8, generation_len=8), 1.5),
        ]
        result = serving.run(stream)
        states = [r.state for r in result.requests]
        assert states.count(RequestState.FINISHED) == 2
        assert states.count(RequestState.REJECTED) == 1
        oversized = next(
            r for r in result.requests if r.state is RequestState.REJECTED
        )
        assert oversized.request.input_len == 50_000_000
        assert result.admission_stats["rejected_kv"] == 1


class TestBackends:
    def test_flexgen_backend_serves(self, mixtral, t4_node, workload, slo):
        flexgen = FlexGenSystem(mixtral, t4_node)
        serving = ServingSystem(flexgen, workload, slo=slo)
        result = serving.run(DeterministicProcess(rate=0.5), count=8, seed=0)
        assert result.system == "flexgen"
        assert result.report.num_completed == 8

    def test_simulator_mode_runs(self, backend, workload, policy, slo):
        serving = ServingSystem(
            backend, workload, policy=policy, slo=slo, use_simulator=True
        )
        result = serving.run(DeterministicProcess(rate=0.5), count=6, seed=0)
        assert result.report.num_completed == 6
        assert result.report.tpot[50] > 0
