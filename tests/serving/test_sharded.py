"""ShardedServingSystem: scaling, conservation, utilization, determinism."""

import pytest

from repro.cluster import ClusterSpec
from repro.experiments.serving_sweep import offline_capacity
from repro.serving import (
    PoissonProcess,
    ServingSystem,
    ShardedServingSystem,
    default_slo,
)
from repro.serving.queue import RequestState
from repro.systems import MoELightningSystem
from repro.utils.errors import ConfigurationError
from repro.workloads import mtbench

NUM_REQUESTS = 32
SEED = 0


@pytest.fixture(scope="module")
def setup(mixtral, t4_node):
    workload = mtbench(generation_len=8, num_requests=NUM_REQUESTS)
    backend = MoELightningSystem(mixtral, t4_node)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    rate = 6.0 * offline_capacity(backend, workload, policy)
    return backend, workload, policy, slo, rate


def run_sharded(setup, num_shards, router="round-robin", **kwargs):
    backend, workload, policy, slo, rate = setup
    sharded = ShardedServingSystem(
        backend,
        workload,
        num_shards=num_shards,
        router=router,
        policy=policy,
        slo=slo,
        **kwargs,
    )
    return sharded.run(PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED)


def test_four_shards_beat_one_on_the_same_stream(setup):
    """The acceptance criterion: strictly higher aggregate throughput."""
    backend, workload, policy, slo, rate = setup
    single = ServingSystem(backend, workload, policy=policy, slo=slo).run(
        PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED
    )
    quad = run_sharded(setup, 4)
    assert quad.report.token_throughput > single.report.token_throughput
    assert quad.report.ttft[99] < single.report.ttft[99]


def test_offered_load_conserved_across_shards(setup):
    result = run_sharded(setup, 4)
    assert result.report.num_offered == NUM_REQUESTS
    assert sum(stats.offered for stats in result.shard_stats) == NUM_REQUESTS
    assert (
        result.report.num_completed + result.report.num_rejected
        == NUM_REQUESTS
    )
    for serving_request in result.requests:
        assert serving_request.shard_id is not None
        assert serving_request.state in (
            RequestState.FINISHED,
            RequestState.REJECTED,
        )


def test_per_shard_utilization_reported(setup):
    result = run_sharded(setup, 4)
    assert len(result.shard_stats) == 4
    for stats in result.shard_stats:
        assert 0.0 <= stats.utilization <= 1.0
        assert stats.busy_time <= result.makespan
    row = result.as_row()
    assert row["num_shards"] == 4
    assert row["shard_util"].count("/") == 3
    assert 0.0 < row["shard_util_min"] <= row["shard_util_mean"] <= 1.0


@pytest.mark.parametrize(
    "router", ["round-robin", "least-loaded", "session-affinity"]
)
def test_every_router_policy_serves_the_stream(setup, router):
    result = run_sharded(setup, 4, router=router)
    assert result.router == router
    assert result.report.num_completed + result.report.num_rejected == NUM_REQUESTS
    assert result.report.token_throughput > 0


def test_runs_are_deterministic(setup):
    first = run_sharded(setup, 2, router="least-loaded")
    second = run_sharded(setup, 2, router="least-loaded")
    assert first.makespan == second.makespan
    assert first.report == second.report
    assert [sr.shard_id for sr in first.requests] == [
        sr.shard_id for sr in second.requests
    ]


def test_cluster_spec_provides_shard_count(setup, t4_node):
    backend, workload, policy, slo, rate = setup
    cluster = ClusterSpec.scale_out(t4_node, 3)
    sharded = ShardedServingSystem(
        backend, workload, cluster=cluster, policy=policy, slo=slo
    )
    assert sharded.num_shards == 3
    with pytest.raises(ConfigurationError):
        ShardedServingSystem(
            backend, workload, num_shards=2, cluster=cluster, policy=policy
        )
    with pytest.raises(ConfigurationError):
        ShardedServingSystem(backend, workload, policy=policy)


def test_single_shard_matches_serving_system(setup):
    """One shard behind a router serves exactly like the plain facade."""
    backend, workload, policy, slo, rate = setup
    single = ServingSystem(backend, workload, policy=policy, slo=slo).run(
        PoissonProcess(rate), count=NUM_REQUESTS, seed=SEED
    )
    routed = run_sharded(setup, 1)
    assert routed.report == single.report
    assert routed.makespan == single.makespan
