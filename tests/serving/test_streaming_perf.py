"""The streaming hot path: timeline equivalence, O(1) accounting, memory.

The performance overhaul's contract is that every optimization is
*invisible* to the simulated timeline:

* streaming mode (``store_samples=False``: lazy columnar arrivals, sketch
  reports, no step records) serves bit-for-bit the same per-request
  admit/first-token/finish instants as exact mode, and its P² percentiles
  track the exact ones;
* incremental routing (shared load board + memoised cache probes) makes
  bit-for-bit the same decisions as the retained polling closure, for
  both load-driven and cache-aware policies;
* the engine's O(1) counters (load, offered/completed/rejected, busy
  accumulators) agree with the scans they replaced;
* a long streaming run's peak memory does not grow with stream length.
"""

import tracemalloc

import pytest

from repro.experiments.serving_sweep import offline_capacity
from repro.serving import PoissonProcess, default_slo
from repro.serving.metrics import ReportBuilder
from repro.serving.queue import ServingRequest
from repro.serving.server import EngineCore, EngineStepModel
from repro.serving.sharded import ShardedServingSystem
from repro.systems import MoELightningSystem
from repro.workloads import chat

GENERATION_LEN = 8
SEED = 7


@pytest.fixture(scope="module")
def backend(mixtral, t4_node):
    return MoELightningSystem(mixtral, t4_node)


def make_sharded(backend, num_requests, num_shards=4, **kwargs):
    workload = chat(generation_len=GENERATION_LEN, num_requests=num_requests)
    policy = backend.select_policy(workload)
    slo = default_slo(backend, workload, policy)
    return ShardedServingSystem(
        backend,
        workload,
        num_shards=num_shards,
        policy=policy,
        slo=slo,
        **kwargs,
    )


def sustainable_rate(backend, num_shards, load_factor=0.8):
    """An offered rate that keeps queues bounded (for memory tests)."""
    workload = chat(generation_len=GENERATION_LEN, num_requests=1)
    policy = backend.select_policy(workload)
    return load_factor * offline_capacity(backend, workload, policy) * num_shards


def run_stream(system, num_requests, rate=120.0, seed=SEED):
    return system.run(PoissonProcess(rate), count=num_requests, seed=seed)


def per_request_instants(records):
    """Multiset of per-request timelines, independent of record order.

    ``None`` instants (rejected requests never admit or decode) sort as
    -1 so the tuples stay comparable.
    """

    def instant(value):
        return -1.0 if value is None else value

    return sorted(
        (
            sr.arrival_time,
            instant(sr.shard_id),
            instant(sr.admit_time),
            instant(sr.first_token_time),
            instant(sr.finish_time),
            sr.state.name,
        )
        for sr in records
    )


# ----------------------------------------------------------------------
# Streaming vs. exact equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("router", ["round-robin", "least-loaded"])
def test_streaming_mode_reproduces_exact_timeline(backend, monkeypatch, router):
    """Same stream, same instants: only the report aggregation differs."""
    num_requests = 300
    exact = run_stream(
        make_sharded(backend, num_requests, router=router), num_requests
    )

    captured = []
    original = ReportBuilder.observe
    original_many = ReportBuilder.observe_many

    def spy(self, serving_request):
        captured.append(serving_request)
        original(self, serving_request)

    def spy_many(self, serving_requests):
        batch = list(serving_requests)
        captured.extend(batch)
        original_many(self, batch)

    monkeypatch.setattr(ReportBuilder, "observe", spy)
    monkeypatch.setattr(ReportBuilder, "observe_many", spy_many)
    streaming = run_stream(
        make_sharded(backend, num_requests, router=router, store_samples=False),
        num_requests,
    )

    # Bit-for-bit: makespan, per-request instants, shard stats, and every
    # exact (counter-derived) report field.
    assert streaming.makespan == exact.makespan
    assert len(captured) == num_requests
    assert per_request_instants(captured) == per_request_instants(
        exact.requests
    )
    assert [s.as_row() for s in streaming.shard_stats] == [
        s.as_row() for s in exact.shard_stats
    ]
    assert streaming.report.num_offered == exact.report.num_offered
    assert streaming.report.num_completed == exact.report.num_completed
    assert streaming.report.num_rejected == exact.report.num_rejected
    assert streaming.report.goodput == exact.report.goodput
    assert streaming.report.token_throughput == exact.report.token_throughput
    assert streaming.report.mean_ttft == pytest.approx(exact.report.mean_ttft)
    assert streaming.report.mean_tpot == pytest.approx(exact.report.mean_tpot)
    # Streaming mode keeps no records by design.
    assert streaming.requests == []

    # P² percentiles track the exact ones within sketch tolerance.
    for name in ("ttft", "tpot", "e2e"):
        exact_pcts = getattr(exact.report, name)
        stream_pcts = getattr(streaming.report, name)
        for percentile, exact_value in exact_pcts.items():
            assert stream_pcts[percentile] == pytest.approx(
                exact_value, rel=0.15
            )


# ----------------------------------------------------------------------
# Incremental routing vs. the polling reference
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "router,prefix_cache",
    [("least-loaded", False), ("cache-aware", True)],
)
def test_incremental_routing_matches_polling(backend, router, prefix_cache):
    """The O(1) router state never changes a routing decision."""
    num_requests = 200
    results = {}
    for incremental in (False, True):
        system = make_sharded(
            backend,
            num_requests,
            router=router,
            prefix_cache=prefix_cache,
            incremental_routing=incremental,
        )
        results[incremental] = run_stream(system, num_requests)
    polling, incremental = results[False], results[True]
    assert incremental.makespan == polling.makespan
    assert [sr.shard_id for sr in incremental.requests] == [
        sr.shard_id for sr in polling.requests
    ]
    assert per_request_instants(incremental.requests) == per_request_instants(
        polling.requests
    )
    assert [s.as_row() for s in incremental.shard_stats] == [
        s.as_row() for s in polling.shard_stats
    ]


def test_load_counter_matches_scan(backend):
    """The incremental load counter equals the O(n) scan it replaced."""
    num_requests = 120
    workload = chat(generation_len=GENERATION_LEN, num_requests=num_requests)
    policy = backend.select_policy(workload)
    step_model = EngineStepModel(backend, workload, policy)
    core = EngineCore(
        backend=backend,
        workload=workload,
        policy=policy,
        step_model=step_model,
        max_queue_depth=8,
    )
    rate = 4.0 * offline_capacity(backend, workload, policy)
    stream = PoissonProcess(rate).generate_lazy(
        workload, count=num_requests, seed=SEED
    )
    for timed in stream:
        core.offer(
            ServingRequest(request=timed.request, arrival_time=timed.arrival_time)
        )
        assert core._load == core.load()
        # Drive steps opportunistically so admissions, retirements and
        # oversized rejections all exercise the counter.
        if not core.step_in_flight and core.has_work():
            core.begin_step()
            assert core._load == core.load()
        if core.step_in_flight:
            core.complete_step()
            assert core._load == core.load()
    core.drain()
    assert core._load == core.load() == 0


# ----------------------------------------------------------------------
# Memory flatness
# ----------------------------------------------------------------------
def test_streaming_memory_is_flat_in_stream_length(backend):
    """4x the requests must not cost 4x the memory (or anywhere near it).

    The streaming path holds one in-flight arrival plus the live working
    set; peak traced memory at 100k requests stays within a small factor
    of the 25k peak (fixed overheads: step-model memo, interpreter noise)
    instead of scaling with the stream.
    """
    rate = sustainable_rate(backend, num_shards=4)
    peaks = {}
    for num_requests in (25_000, 100_000):
        system = make_sharded(
            backend, num_requests, num_shards=4, store_samples=False
        )
        tracemalloc.start()
        result = run_stream(system, num_requests, rate=rate)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[num_requests] = peak
        assert result.report.num_completed + result.report.num_rejected == (
            num_requests
        )
    assert peaks[100_000] < 2.0 * peaks[25_000]
    # Absolute sanity: far below what 100k stored ServingRequests need.
    assert peaks[100_000] < 120e6


def test_lazy_hash_memory_is_flat_in_stream_length(backend):
    """Cache-aware streaming stays flat too: hashes, no token lists.

    The prefix-cache hot path carries each prompt as a per-session hash
    row plus a lazy token source — never a materialised token tuple — and
    the shard stores' residency is bounded by their pools, not by the
    stream.  4x the requests must stay within a small factor of the peak
    (per-session hash rows and interpreter noise are the only growth).
    """
    rate = sustainable_rate(backend, num_shards=4)
    peaks = {}
    for num_requests in (10_000, 40_000):
        system = make_sharded(
            backend,
            num_requests,
            num_shards=4,
            router="cache-aware",
            prefix_cache=True,
            store_samples=False,
        )
        tracemalloc.start()
        result = run_stream(system, num_requests, rate=rate)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        peaks[num_requests] = peak
        assert result.report.num_completed + result.report.num_rejected == (
            num_requests
        )
    assert peaks[40_000] < 2.0 * peaks[10_000]
    # Absolute sanity: far below what 40k stored token tuples need.
    assert peaks[40_000] < 80e6


def test_streaming_percentiles_agree_with_exact_at_scale(backend):
    """P² vs. exact on a long stream: the sketch is a faithful reporter."""
    num_requests = 30_000
    rate = sustainable_rate(backend, num_shards=4)
    exact = run_stream(
        make_sharded(backend, num_requests, num_shards=4),
        num_requests,
        rate=rate,
    )
    streaming = run_stream(
        make_sharded(backend, num_requests, num_shards=4, store_samples=False),
        num_requests,
        rate=rate,
    )
    assert streaming.makespan == exact.makespan
    assert streaming.report.goodput == exact.report.goodput
    assert streaming.report.num_completed == exact.report.num_completed
    for name in ("ttft", "tpot", "e2e"):
        exact_pcts = getattr(exact.report, name)
        stream_pcts = getattr(streaming.report, name)
        for percentile, exact_value in exact_pcts.items():
            assert stream_pcts[percentile] == pytest.approx(
                exact_value, rel=0.1
            )
