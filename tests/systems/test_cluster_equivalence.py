"""1-shard clusters must reproduce single-node SystemResults bit-for-bit.

The cluster refactor's backward-compatibility contract: a system built on a
trivial (1-device) ClusterSpec follows exactly the same code path — same
models, same policy search, same schedule — as one built on the plain
HardwareSpec, so every existing single-GPU experiment result is unchanged.
"""

import pytest

from repro.cluster import ClusterSpec, PartitionPlan
from repro.systems import (
    DeepSpeedZeroSystem,
    FlexGenSystem,
    MoELightningSystem,
)
from repro.workloads import mtbench

SYSTEMS = (MoELightningSystem, FlexGenSystem, DeepSpeedZeroSystem)


@pytest.fixture(scope="module")
def workload():
    return mtbench(generation_len=8, num_requests=24)


@pytest.mark.parametrize("system_cls", SYSTEMS, ids=lambda cls: cls.name)
def test_one_shard_cluster_reproduces_system_result(
    system_cls, mixtral, t4_node, workload
):
    plain = system_cls(mixtral, t4_node).run(workload)
    clustered = system_cls(
        mixtral, cluster=ClusterSpec.single(t4_node)
    ).run(workload)
    # Bit-for-bit: the dataclass compares every field, including the policy
    # tuple, prefill/decode times and the step timing.
    assert clustered == plain
    assert clustered.num_shards == 1


def test_one_shard_analytical_path_identical(mixtral, t4_node, workload):
    plain = MoELightningSystem(mixtral, t4_node).run(workload, simulate=False)
    clustered = MoELightningSystem(
        mixtral, cluster=ClusterSpec.single(t4_node)
    ).run(workload, simulate=False)
    assert clustered == plain


def test_multi_shard_cluster_reports_shards_and_pays_collectives(
    dbrx, multi_t4_node, workload
):
    cluster = ClusterSpec.from_hardware(multi_t4_node)
    system = MoELightningSystem(dbrx, cluster=cluster)
    assert system.num_shards == 4
    result = system.run(workload, simulate=False)
    assert result.num_shards == 4
    assert result.as_row()["num_shards"] == 4
    # The same aggregate node without explicit collectives is strictly
    # faster: partitioning adds communication, never removes work.
    aggregate = MoELightningSystem(dbrx, multi_t4_node)
    baseline = aggregate.run(workload, policy=result.policy, simulate=False)
    assert result.total_time >= baseline.total_time


def test_partition_and_cluster_must_agree(mixtral, t4_node, multi_t4_node):
    from repro.utils.errors import ConfigurationError

    cluster = ClusterSpec.from_hardware(multi_t4_node)
    other = ClusterSpec.single(t4_node)
    plan = PartitionPlan(cluster=cluster, tp_size=4)
    with pytest.raises(ConfigurationError):
        MoELightningSystem(mixtral, cluster=other, partition=plan)


def test_hardware_or_cluster_required(mixtral):
    from repro.utils.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        MoELightningSystem(mixtral)
