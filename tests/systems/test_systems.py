"""Tests for the end-to-end inference systems."""

import pytest

from repro.core.policy import Policy
from repro.systems import (
    SYSTEM_REGISTRY,
    DeepSpeedZeroSystem,
    FlexGenSystem,
    MoELightningSystem,
)
from repro.utils.errors import ConfigurationError
from repro.workloads import mtbench


@pytest.fixture(scope="module")
def workload():
    return mtbench(generation_len=64)


def test_registry_contains_all_systems():
    assert set(SYSTEM_REGISTRY) == {"moe-lightning", "flexgen", "deepspeed"}


def test_moe_lightning_selects_cpu_attention_on_t4(mixtral, t4_node, workload):
    system = MoELightningSystem(mixtral, t4_node, max_sim_layers=3)
    policy = system.select_policy(workload)
    assert not policy.attention_on_gpu
    assert policy.ffn_on_gpu


def test_moe_lightning_padded_variant_renamed(mixtral, t4_node):
    assert MoELightningSystem(mixtral, t4_node, padded=True).name == "moe-lightning(p)"
    assert MoELightningSystem(mixtral, t4_node, padded=False).name == "moe-lightning"


def test_flexgen_native_policy_uses_small_micro_batches(mixtral, t4_node, workload):
    system = FlexGenSystem(mixtral, t4_node, max_sim_layers=3)
    policy = system.select_policy(workload)
    assert policy.attention_on_gpu
    assert policy.micro_batch_size <= 32
    assert policy.batch_size >= 8 * policy.micro_batch_size


def test_flexgen_hrm_policy_beats_native_policy(mixtral, t4_node, workload):
    native = FlexGenSystem(mixtral, t4_node, policy_mode="native", max_sim_layers=3)
    hrm = FlexGenSystem(mixtral, t4_node, policy_mode="hrm", max_sim_layers=3)
    native_result = native.run(workload)
    hrm_result = hrm.run(workload)
    assert hrm_result.generation_throughput > native_result.generation_throughput


def test_flexgen_cpu_attention_variant_named_and_scheduled(mixtral, t4_node, workload):
    system = FlexGenSystem(mixtral, t4_node, cpu_attention=True, max_sim_layers=3)
    assert system.name == "flexgen(c)"
    policy = system.select_policy(workload)
    assert not policy.attention_on_gpu


def test_flexgen_rejects_unknown_policy_mode(mixtral, t4_node):
    with pytest.raises(ConfigurationError):
        FlexGenSystem(mixtral, t4_node, policy_mode="magic")


def test_deepspeed_policy_whole_batch_gpu_kv(mixtral, t4_node, workload):
    system = DeepSpeedZeroSystem(mixtral, t4_node, max_sim_layers=3)
    policy = system.select_policy(workload)
    assert policy.batch_size == policy.micro_batch_size
    assert policy.kv_cache_gpu_ratio == 1.0
    # The GPU-resident KV cache caps DeepSpeed's batch size well below the
    # CPU-memory-bound batches of the offloading systems (Table 4).
    assert policy.batch_size < 512


def test_run_reports_consistent_throughput(mixtral, t4_node, workload):
    system = MoELightningSystem(mixtral, t4_node, padded=True, max_sim_layers=3)
    result = system.run(workload)
    assert result.tokens_generated == result.policy.batch_size * workload.generation_len
    assert result.generation_throughput == pytest.approx(
        result.tokens_generated / (result.prefill_time + result.decode_time)
    )
    assert result.decode_throughput >= result.generation_throughput
    row = result.as_row()
    assert row["system"] == "moe-lightning(p)"
    assert row["throughput"] == pytest.approx(result.generation_throughput)


def test_run_with_explicit_policy_uses_it(mixtral, t4_node, workload):
    system = MoELightningSystem(mixtral, t4_node, padded=True, max_sim_layers=3)
    policy = Policy(
        batch_size=128, micro_batch_size=32, attention_on_gpu=False,
        ffn_on_gpu=True, weights_gpu_ratio=0.05,
    )
    result = system.run(workload, policy=policy)
    assert result.policy == policy


def test_analytical_fallback_close_to_simulation(mixtral, t4_node, workload):
    system = MoELightningSystem(mixtral, t4_node, padded=True, max_sim_layers=3)
    policy = system.select_policy(workload)
    simulated = system.run(workload, policy=policy, simulate=True)
    analytical = system.run(workload, policy=policy, simulate=False)
    ratio = simulated.generation_throughput / analytical.generation_throughput
    assert 0.5 < ratio < 1.5
    assert analytical.step_timing is None


def test_moe_lightning_beats_baselines_end_to_end(mixtral, t4_node, workload):
    """The headline comparison of Fig. 7 at the S1 setting."""
    lightning = MoELightningSystem(mixtral, t4_node, padded=True, max_sim_layers=3).run(workload)
    flexgen = FlexGenSystem(mixtral, t4_node, max_sim_layers=3).run(workload)
    deepspeed = DeepSpeedZeroSystem(mixtral, t4_node, max_sim_layers=3).run(workload)
    assert lightning.generation_throughput > flexgen.generation_throughput
    assert lightning.generation_throughput > deepspeed.generation_throughput


def test_unpadded_beats_padded_variant(mixtral, t4_node, workload):
    padded = MoELightningSystem(mixtral, t4_node, padded=True, max_sim_layers=3).run(workload)
    unpadded = MoELightningSystem(mixtral, t4_node, padded=False, max_sim_layers=3).run(workload)
    assert unpadded.generation_throughput > 1.5 * padded.generation_throughput


def test_flexgen_pipeline_parallel_cpu_penalty(mixtral, multi_t4_node, workload):
    """Multi-GPU FlexGen divides its usable CPU-side KV budget (§5.3)."""
    system = FlexGenSystem(mixtral, multi_t4_node, max_sim_layers=3)
    single = FlexGenSystem(mixtral, multi_t4_node.with_tensor_parallel(1), max_sim_layers=3)
    assert (
        system.memory_model(workload).usable_cpu_memory
        < single.memory_model(workload).usable_cpu_memory
    )
