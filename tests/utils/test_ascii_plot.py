"""Tests for the ASCII plot helper."""

import pytest

from repro.utils.ascii_plot import AsciiPlot, Series


def test_series_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        Series(name="bad", xs=[1, 2], ys=[1])


def test_render_places_markers_for_each_series():
    plot = AsciiPlot(width=40, height=10, title="demo")
    plot.add_series("a", [1, 2, 3], [1, 2, 3], marker="a")
    plot.add_series("b", [1, 2, 3], [3, 2, 1], marker="b")
    text = plot.render()
    assert "demo" in text
    assert "a=a" in text and "b=b" in text
    assert "a" in text and "b" in text


def test_render_log_axes_skip_non_positive_points():
    plot = AsciiPlot(width=20, height=5, log_x=True, log_y=True)
    plot.add_series("s", [0, 10, 100], [0, 10, 100], marker="s")
    text = plot.render()
    assert "s=s" in text


def test_render_empty_plot():
    plot = AsciiPlot(title="empty")
    assert "no points" in plot.render()


def test_render_single_point_does_not_divide_by_zero():
    plot = AsciiPlot(width=10, height=4)
    plot.add_series("one", [5], [7], marker="x")
    text = plot.render()
    assert "x" in text
