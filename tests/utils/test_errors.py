"""Tests for the exception hierarchy."""

import pytest

from repro.utils import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigurationError,
        errors.InfeasiblePolicyError,
        errors.SimulationError,
        errors.ScheduleError,
        errors.MemoryManagerError,
    ],
)
def test_all_exceptions_derive_from_repro_error(exc):
    assert issubclass(exc, errors.ReproError)
    with pytest.raises(errors.ReproError):
        raise exc("boom")


def test_repro_error_is_an_exception():
    assert issubclass(errors.ReproError, Exception)
