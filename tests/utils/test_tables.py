"""Tests for the text/markdown table renderers."""

import pytest

from repro.utils.tables import format_cell, render_markdown_table, render_table


def test_format_cell_rounds_floats():
    assert format_cell(3.14159, precision=2) == "3.14"
    assert format_cell(3.14159, precision=4) == "3.1416"


def test_format_cell_renders_none_as_dash():
    assert format_cell(None) == "-"


def test_format_cell_renders_booleans_as_words():
    assert format_cell(True) == "yes"
    assert format_cell(False) == "no"


def test_render_table_alignment_and_title():
    text = render_table(
        ["system", "throughput"],
        [["flexgen", 9.5], ["moe-lightning", 30.1]],
        title="Fig 7",
    )
    lines = text.splitlines()
    assert lines[0] == "Fig 7"
    assert "system" in lines[2]
    assert "moe-lightning" in lines[-1]
    # All data lines share the same width.
    assert len(lines[-1]) == len(lines[-2])


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_render_markdown_table_structure():
    text = render_markdown_table(["a", "b"], [[1, 2.5]])
    lines = text.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[2] == "| 1 | 2.50 |"


def test_render_table_empty_rows_is_ok():
    text = render_table(["a"], [])
    assert "a" in text
