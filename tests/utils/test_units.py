"""Tests for unit constants and formatting helpers."""

import pytest

from repro.utils import units


def test_decimal_constants_are_powers_of_ten():
    assert units.KB == 10**3
    assert units.MB == 10**6
    assert units.GB == 10**9
    assert units.TB == 10**12
    assert units.TERA == 10**12


def test_binary_constants_are_powers_of_two():
    assert units.KIB == 2**10
    assert units.MIB == 2**20
    assert units.GIB == 2**30


def test_gib_and_mib_round_trip():
    assert units.bytes_to_gib(units.gib(3.5)) == pytest.approx(3.5)
    assert units.bytes_to_mib(units.mib(7)) == pytest.approx(7.0)


def test_format_bytes_picks_adaptive_units():
    assert units.format_bytes(512) == "512 B"
    assert units.format_bytes(2_500) == "2.50 KB"
    assert units.format_bytes(3_000_000) == "3.00 MB"
    assert units.format_bytes(16 * units.GB) == "16.00 GB"
    assert units.format_bytes(1.2 * units.TB) == "1.20 TB"


def test_format_flops_picks_adaptive_units():
    assert units.format_flops(500) == "500 FLOP"
    assert units.format_flops(2.5 * units.MEGA) == "2.50 MFLOP"
    assert units.format_flops(3 * units.GIGA) == "3.00 GFLOP"
    assert units.format_flops(1.5 * units.TERA) == "1.50 TFLOP"


def test_format_seconds_picks_adaptive_units():
    assert units.format_seconds(2.0) == "2.000 s"
    assert units.format_seconds(0.005) == "5.000 ms"
    assert units.format_seconds(25e-6) == "25.0 us"


def test_format_throughput_matches_paper_style():
    assert units.format_throughput(30.119) == "30.12 tokens/s"


def test_format_bytes_handles_negative_values():
    assert units.format_bytes(-2 * units.GB) == "-2.00 GB"
