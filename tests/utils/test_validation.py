"""Tests for the validation helpers."""

import pytest

from repro.utils.errors import ConfigurationError
from repro.utils import validation


def test_require_positive_accepts_and_returns_value():
    assert validation.require_positive("x", 3.5) == 3.5


@pytest.mark.parametrize("value", [0, -1, -0.5, None])
def test_require_positive_rejects_non_positive(value):
    with pytest.raises(ConfigurationError, match="x"):
        validation.require_positive("x", value)


def test_require_non_negative_accepts_zero():
    assert validation.require_non_negative("x", 0) == 0


def test_require_non_negative_rejects_negative():
    with pytest.raises(ConfigurationError):
        validation.require_non_negative("x", -1e-9)


def test_require_positive_int_accepts_int():
    assert validation.require_positive_int("n", 7) == 7


@pytest.mark.parametrize("value", [0, -3, 1.5, True, "4"])
def test_require_positive_int_rejects_non_positive_or_non_int(value):
    with pytest.raises(ConfigurationError):
        validation.require_positive_int("n", value)


@pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
def test_require_fraction_accepts_unit_interval(value):
    assert validation.require_fraction("f", value) == value


@pytest.mark.parametrize("value", [-0.01, 1.01, None])
def test_require_fraction_rejects_out_of_range(value):
    with pytest.raises(ConfigurationError):
        validation.require_fraction("f", value)


def test_require_in_accepts_member():
    assert validation.require_in("mode", "a", ("a", "b")) == "a"


def test_require_in_rejects_non_member():
    with pytest.raises(ConfigurationError, match="mode"):
        validation.require_in("mode", "c", ("a", "b"))


def test_require_divides_accepts_exact_division():
    validation.require_divides("heads", 8, 32)


@pytest.mark.parametrize(("divisor", "dividend"), [(3, 32), (0, 8), (-2, 8)])
def test_require_divides_rejects_inexact_division(divisor, dividend):
    with pytest.raises(ConfigurationError):
        validation.require_divides("heads", divisor, dividend)
