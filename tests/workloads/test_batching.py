"""Tests for request batching (Algorithm 2) and padding."""

import pytest

from repro.workloads.batching import balance_report, batch_requests, pad_requests
from repro.workloads.request import Request


def make_requests(lengths, generation_len=8):
    return [Request(input_len=length, generation_len=generation_len) for length in lengths]


def test_all_requests_placed_without_cache_limit():
    requests = make_requests([10, 20, 30, 40, 50, 60])
    result = batch_requests(
        requests, num_micro_batches=2, micro_batch_size=3, generation_len=8
    )
    assert result.num_accepted == 6
    assert not result.aborted
    assert result.batch.num_requests == 6


def test_balanced_token_distribution():
    """Longest-first into the emptiest partition keeps token counts close."""
    requests = make_requests([100, 90, 80, 10, 10, 10])
    result = batch_requests(
        requests, num_micro_batches=2, micro_batch_size=3, generation_len=1
    )
    report = balance_report(result)
    assert report["num_micro_batches"] == 2
    assert report["imbalance"] < 0.35


def test_micro_batches_sealed_at_target_size():
    requests = make_requests([5] * 8)
    result = batch_requests(
        requests, num_micro_batches=2, micro_batch_size=4, generation_len=1
    )
    assert all(mb.size <= 4 for mb in result.micro_batches)
    assert result.num_accepted == 8


def test_cache_limit_aborts_requests():
    requests = make_requests([100, 100, 100], generation_len=10)
    result = batch_requests(
        requests,
        num_micro_batches=1,
        micro_batch_size=3,
        generation_len=10,
        cache_size_tokens=150,
    )
    assert result.num_accepted == 1
    assert len(result.aborted) == 2


def test_cache_limit_counts_generation_tokens():
    """A request whose prompt fits but whose generated tokens would not is aborted."""
    requests = make_requests([100], generation_len=100)
    result = batch_requests(
        requests,
        num_micro_batches=1,
        micro_batch_size=1,
        generation_len=100,
        cache_size_tokens=150,
    )
    assert result.num_accepted == 0
    assert len(result.aborted) == 1


def test_no_request_lost_or_duplicated():
    requests = make_requests(list(range(1, 42)))
    result = batch_requests(
        requests, num_micro_batches=4, micro_batch_size=5, generation_len=2,
        cache_size_tokens=120,
    )
    placed_ids = [r.request_id for mb in result.micro_batches for r in mb]
    aborted_ids = [r.request_id for r in result.aborted]
    all_ids = sorted(placed_ids + aborted_ids)
    assert all_ids == sorted(r.request_id for r in requests)
    assert len(set(placed_ids)) == len(placed_ids)


def test_pad_requests_to_batch_maximum():
    requests = make_requests([10, 20, 30])
    padded = pad_requests(requests)
    assert all(r.effective_input_len == 30 for r in padded)
    assert [r.input_len for r in padded] == [10, 20, 30]


def test_pad_requests_explicit_target():
    requests = make_requests([10, 20])
    padded = pad_requests(requests, pad_to=64)
    assert all(r.effective_input_len == 64 for r in padded)


def test_pad_requests_never_truncates():
    requests = make_requests([100])
    padded = pad_requests(requests, pad_to=10)
    assert padded[0].effective_input_len == 100


def test_pad_requests_empty_list():
    assert pad_requests([]) == []


def test_balance_report_empty_result():
    result = batch_requests(
        [], num_micro_batches=2, micro_batch_size=2, generation_len=1
    )
    report = balance_report(result)
    assert report["num_micro_batches"] == 0


@pytest.mark.parametrize("bad", [0, -1])
def test_invalid_parameters_rejected(bad):
    from repro.utils.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        batch_requests(
            make_requests([1]), num_micro_batches=bad, micro_batch_size=1,
            generation_len=1,
        )
