"""Tests for the synthetic workload generators (Table 3)."""

import numpy as np
import pytest

from repro.utils.errors import ConfigurationError
from repro.workloads import get_workload, list_workloads, mtbench, summarization, synthetic_reasoning
from repro.workloads.generators import generate_requests, uniform_workload


def test_registry_lists_paper_workloads():
    names = list_workloads()
    for expected in ("mtbench", "synthetic_reasoning", "summarization"):
        assert expected in names


def test_table3_statistics():
    assert mtbench().avg_prompt_len == 77
    assert mtbench().max_prompt_len == 418
    assert synthetic_reasoning().avg_prompt_len == 242
    assert synthetic_reasoning().max_prompt_len == 256
    assert synthetic_reasoning().generation_len == 50
    assert summarization().avg_prompt_len == 1693
    assert summarization().max_prompt_len == 1984
    assert summarization().generation_len == 64


def test_get_workload_passes_kwargs():
    workload = get_workload("mtbench", generation_len=256)
    assert workload.generation_len == 256


def test_get_workload_unknown_raises():
    with pytest.raises(ConfigurationError):
        get_workload("wikitext")


def test_uniform_workload_constant_length():
    workload = uniform_workload(prompt_len=512, generation_len=32)
    assert workload.avg_prompt_len == workload.max_prompt_len == 512


def test_generate_requests_is_deterministic():
    spec = mtbench(num_requests=200)
    first = generate_requests(spec, seed=7)
    second = generate_requests(spec, seed=7)
    assert [r.input_len for r in first] == [r.input_len for r in second]


def test_generate_requests_respects_bounds_and_mean():
    spec = mtbench(num_requests=2000)
    requests = generate_requests(spec, seed=0)
    lengths = np.array([r.input_len for r in requests])
    assert lengths.max() == spec.max_prompt_len
    assert lengths.min() >= 1
    assert abs(lengths.mean() - spec.avg_prompt_len) < 0.35 * spec.avg_prompt_len


def test_generate_requests_tight_distribution_for_helm():
    spec = synthetic_reasoning(num_requests=500)
    requests = generate_requests(spec, seed=0)
    lengths = np.array([r.input_len for r in requests])
    assert lengths.max() <= spec.max_prompt_len
    assert abs(lengths.mean() - spec.avg_prompt_len) < 0.2 * spec.avg_prompt_len


def test_generate_requests_count_override():
    spec = mtbench(num_requests=1000)
    assert len(generate_requests(spec, count=17)) == 17


def test_generation_length_attached_to_requests():
    spec = mtbench(generation_len=64, num_requests=10)
    requests = generate_requests(spec)
    assert all(r.generation_len == 64 for r in requests)


# ----------------------------------------------------------------------
# Multi-turn chat workload
# ----------------------------------------------------------------------
class TestChatWorkload:
    def test_registered_and_parameterised(self):
        from repro.workloads import get_workload

        spec = get_workload("chat", generation_len=8, num_requests=12)
        assert spec.name == "chat"
        assert spec.generation_len == 8

    def test_turn_lengths_are_deterministic(self):
        from repro.workloads import chat, generate_chat_requests

        spec = chat(generation_len=8, num_requests=12, turns_per_session=3)
        requests = generate_chat_requests(spec, seed=3)
        assert len(requests) == 12
        for request in requests:
            assert request.session_id is not None
            assert request.token_ids is not None
            assert len(request.token_ids) == request.input_len
        assert max(r.input_len for r in requests) <= spec.max_prompt_len

    def test_sessions_share_the_system_prompt(self):
        from repro.workloads import chat, generate_chat_requests

        spec = chat(generation_len=8, num_requests=8, turns_per_session=2)
        requests = generate_chat_requests(spec, seed=0)
        first_turns = [r for r in requests if r.input_len == spec.prompt_len_at_turn(0)]
        prefixes = {r.token_ids[: spec.system_prompt_len] for r in first_turns}
        assert len(prefixes) == 1  # one shared system prompt across sessions

    def test_later_turns_extend_the_previous_prompt(self):
        from repro.workloads import chat, generate_chat_requests

        spec = chat(generation_len=8, num_requests=8, turns_per_session=4)
        requests = generate_chat_requests(spec, count=8, seed=1)
        by_session = {}
        for request in requests:
            by_session.setdefault(request.session_id, []).append(request)
        for turns in by_session.values():
            for earlier, later in zip(turns, turns[1:]):
                assert later.token_ids[: earlier.input_len] == earlier.token_ids

    def test_same_seed_same_tokens(self):
        from repro.workloads import chat, generate_chat_requests

        spec = chat(generation_len=4, num_requests=6)
        a = generate_chat_requests(spec, seed=7)
        b = generate_chat_requests(spec, seed=7)
        assert [r.token_ids for r in a] == [r.token_ids for r in b]
        c = generate_chat_requests(spec, seed=8)
        assert [r.token_ids for r in a] != [r.token_ids for r in c]


# ----------------------------------------------------------------------
# Columnar generation (the streaming hot path)
# ----------------------------------------------------------------------
class TestColumnarGeneration:
    """The vectorised generator must match the object path value-for-value."""

    def test_matches_object_path_on_length_workloads(self):
        from repro.workloads.generators import generate_request_columns

        for spec in (mtbench(num_requests=500), synthetic_reasoning(num_requests=500)):
            for seed in (0, 7):
                objects = generate_requests(spec, seed=seed)
                columns = generate_request_columns(spec, seed=seed)
                assert len(columns) == len(objects)
                assert columns.input_lens.tolist() == [r.input_len for r in objects]
                assert columns.generation_lens.tolist() == [
                    r.generation_len for r in objects
                ]
                assert columns.session_ids is None

    def test_matches_object_path_on_chat(self):
        from repro.workloads import chat
        from repro.workloads.generators import generate_request_columns

        spec = chat(generation_len=8, num_requests=50, turns_per_session=3)
        objects = generate_requests(spec, seed=3)
        columns = generate_request_columns(spec, seed=3)
        assert columns.input_lens.tolist() == [r.input_len for r in objects]
        assert columns.session_ids.tolist() == [r.session_id for r in objects]
        assert columns.generation_lens.tolist() == [
            r.generation_len for r in objects
        ]

    def test_materialize_round_trips_lazily(self):
        from repro.workloads.generators import generate_request_columns

        spec = mtbench(num_requests=40)
        columns = generate_request_columns(spec, seed=1)
        eager = columns.materialize()
        lazy = list(columns.iter_requests())
        assert [r.input_len for r in eager] == [r.input_len for r in lazy]
        # Columnar requests omit token ids by design (prefix-cache callers
        # use the object generators instead).
        assert all(r.token_ids is None for r in eager)

    def test_count_override_and_forced_max(self):
        from repro.workloads.generators import generate_request_columns

        spec = mtbench(num_requests=1000)
        columns = generate_request_columns(spec, count=17, seed=0)
        assert len(columns) == 17
        assert int(columns.input_lens.max()) == spec.max_prompt_len
