"""Tests for Request / MicroBatch / Batch datatypes."""

import pytest

from repro.utils.errors import ConfigurationError
from repro.workloads.request import Batch, MicroBatch, Request, total_generated_tokens


def test_request_effective_and_total_lengths():
    request = Request(input_len=10, generation_len=5)
    assert request.effective_input_len == 10
    assert request.total_len == 15
    padded = request.padded_to(32)
    assert padded.effective_input_len == 32
    assert padded.total_len == 37
    assert padded.request_id == request.request_id


def test_request_padding_below_input_rejected():
    request = Request(input_len=10, generation_len=5)
    with pytest.raises(ConfigurationError):
        request.padded_to(5)


def test_request_rejects_non_positive_lengths():
    with pytest.raises(ConfigurationError):
        Request(input_len=0, generation_len=4)
    with pytest.raises(ConfigurationError):
        Request(input_len=4, generation_len=0)


def test_request_ids_are_unique():
    a = Request(input_len=1, generation_len=1)
    b = Request(input_len=1, generation_len=1)
    assert a.request_id != b.request_id


def test_micro_batch_aggregates():
    mb = MicroBatch(
        requests=[
            Request(input_len=10, generation_len=4),
            Request(input_len=20, generation_len=4),
        ]
    )
    assert mb.size == 2
    assert mb.total_input_tokens == 30
    assert mb.max_input_len == 20
    assert mb.max_total_len == 24
    assert mb.total_kv_tokens(decoded_tokens=2) == 34
    assert mb.total_kv_tokens(decoded_tokens=100) == 30 + 8  # capped at total_len


def test_micro_batch_add_and_iterate():
    mb = MicroBatch()
    mb.add(Request(input_len=3, generation_len=1))
    assert len(mb) == 1
    assert list(mb)[0].input_len == 3


def test_batch_from_requests_splits_evenly():
    requests = [Request(input_len=4, generation_len=2) for _ in range(10)]
    batch = Batch.from_requests(requests, micro_batch_size=4)
    assert batch.num_micro_batches == 3
    assert [mb.size for mb in batch] == [4, 4, 2]
    assert batch.num_requests == 10
    assert batch.max_micro_batch_size == 4
    assert batch.generation_len == 2
    assert len(batch.all_requests()) == 10


def test_batch_total_kv_tokens():
    requests = [Request(input_len=4, generation_len=2) for _ in range(3)]
    batch = Batch.from_requests(requests, micro_batch_size=2)
    assert batch.total_kv_tokens(decoded_tokens=1) == 3 * 5


def test_total_generated_tokens():
    requests = [Request(input_len=4, generation_len=7) for _ in range(3)]
    assert total_generated_tokens(requests) == 21


def test_session_key_namespaces_sessions_from_request_ids():
    """session_id=5 and a sessionless request_id=5 must not collide."""
    with_session = Request(
        input_len=4, generation_len=1, request_id=99, session_id=5
    )
    sessionless = Request(input_len=4, generation_len=1, request_id=5)
    assert with_session.session_key != sessionless.session_key
    # Exhaustively: the two key spaces are disjoint over a dense range.
    session_keys = {
        Request(input_len=1, generation_len=1, request_id=0, session_id=i).session_key
        for i in range(256)
    }
    request_keys = {
        Request(input_len=1, generation_len=1, request_id=i).session_key
        for i in range(256)
    }
    assert session_keys.isdisjoint(request_keys)


def test_token_ids_length_must_match_input_len():
    with pytest.raises(ConfigurationError):
        Request(input_len=3, generation_len=1, token_ids=(1, 2))


def test_padding_preserves_token_ids():
    request = Request(input_len=3, generation_len=1, token_ids=(7, 8, 9))
    assert request.padded_to(10).token_ids == (7, 8, 9)
