"""Tests for WorkloadSpec."""

import pytest

from repro.utils.errors import ConfigurationError
from repro.workloads.spec import WorkloadSpec


def make_spec(**overrides):
    params = dict(
        name="wl", avg_prompt_len=100, max_prompt_len=400, generation_len=32,
        num_requests=100,
    )
    params.update(overrides)
    return WorkloadSpec(**params)


def test_average_and_padded_lengths():
    spec = make_spec()
    assert spec.avg_total_len == 132
    assert spec.padded_total_len == 432


def test_effective_prompt_len_depends_on_padding():
    spec = make_spec()
    assert spec.effective_prompt_len(padded=False) == 100
    assert spec.effective_prompt_len(padded=True) == 400


def test_with_generation_len_copies():
    spec = make_spec()
    longer = spec.with_generation_len(256)
    assert longer.generation_len == 256
    assert spec.generation_len == 32


def test_with_num_requests_copies():
    assert make_spec().with_num_requests(5).num_requests == 5


def test_max_prompt_must_cover_average():
    with pytest.raises(ConfigurationError):
        make_spec(avg_prompt_len=500)


def test_describe_mentions_lengths():
    text = make_spec().describe()
    assert "100" in text and "400" in text and "32" in text
